#include "kvdb/sharded_db.hpp"

namespace ale::kvdb {

namespace {

// Scope bundle per ShardedDb instance: flags depend on the instance config,
// so these cannot be function-local statics.
struct Scopes {
  ScopeInfo set_outer, get_outer, remove_outer, append_outer;
  ScopeInfo clear_outer, count_outer;
  ScopeInfo iterate_outer, iterate_slot;
  ScopeInfo set_slot, get_slot, remove_slot, append_slot, clear_slot;

  // Outer scopes carry their readers-writer mode tag: record methods run
  // shared, whole-DB methods exclusive (see ElidableSharedLock).
  explicit Scopes(const ShardedDb::Config& cfg)
      : set_outer("kcdb.set.outer", cfg.outer_swopt, cfg.outer_htm,
                  static_cast<std::uint8_t>(RwMode::kShared)),
        get_outer("kcdb.get.outer", cfg.outer_swopt, cfg.outer_htm,
                  static_cast<std::uint8_t>(RwMode::kShared)),
        remove_outer("kcdb.remove.outer", cfg.outer_swopt, cfg.outer_htm,
                     static_cast<std::uint8_t>(RwMode::kShared)),
        append_outer("kcdb.append.outer", cfg.outer_swopt, cfg.outer_htm,
                     static_cast<std::uint8_t>(RwMode::kShared)),
        clear_outer("kcdb.clear.outer", false, cfg.outer_htm,
                    static_cast<std::uint8_t>(RwMode::kExclusive)),
        count_outer("kcdb.count.outer", false, cfg.outer_htm,
                    static_cast<std::uint8_t>(RwMode::kShared)),
        iterate_outer("kcdb.iterate.outer", false, cfg.outer_htm,
                      static_cast<std::uint8_t>(RwMode::kShared)),
        iterate_slot("kcdb.iterate.slot", false, cfg.inner_htm),
        set_slot("kcdb.set.slot", false, cfg.inner_htm),
        get_slot("kcdb.get.slot", cfg.inner_get_swopt, cfg.inner_htm),
        remove_slot("kcdb.remove.slot", false, cfg.inner_htm),
        // append allocates inside the critical section; prohibiting HTM
        // here keeps aborts allocation-free (and exercises the §4.1
        // nested-no-HTM abort path under real workloads).
        append_slot("kcdb.append.slot", false, false),
        clear_slot("kcdb.clear.slot", false, cfg.inner_htm) {}
};

}  // namespace

// One Scopes bundle per live ShardedDb; stored via pimpl-lite map keyed by
// instance would be overkill — we simply own it.
struct ScopesHolder {
  Scopes scopes;
  explicit ScopesHolder(const ShardedDb::Config& cfg) : scopes(cfg) {}
};

std::uint64_t ShardedDb::hash_of(std::string_view key) noexcept {
  // FNV-1a, then a finalizer mix.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

ShardedDb::ShardedDb(Config cfg, std::string name)
    : cfg_(cfg), method_(name + ".methodLock", cfg.trylockspin) {
  if (cfg_.num_slots == 0) cfg_.num_slots = 1;
  slots_.reserve(cfg_.num_slots);
  for (std::size_t i = 0; i < cfg_.num_slots; ++i) {
    slots_.push_back(std::make_unique<Slot>(
        cfg_.buckets_per_slot == 0 ? 1 : cfg_.buckets_per_slot,
        name + ".slotLock"));
  }
  scopes_ = std::make_unique<ScopesHolder>(cfg_);
}

ShardedDb::~ShardedDb() {
  for (auto& sp : slots_) {
    Slot& s = *sp;
    for (Bucket& b : s.buckets) {
      Node* n = b.head;
      while (n != nullptr) {
        Node* next = n->next;
        Blob::destroy(n->key);
        Blob::destroy(n->val);
        delete n;
        n = next;
      }
    }
    Node* rn = s.retired_nodes;
    while (rn != nullptr) {
      Node* next = rn->next;
      delete rn;  // its blobs are on the retired-blob list
      rn = next;
    }
    Blob* rb = s.retired_blobs;
    while (rb != nullptr) {
      Blob* next = rb->next_retired;
      Blob::destroy(rb);
      rb = next;
    }
  }
}

ShardedDb::Node* ShardedDb::find_in_slot(Slot& s, std::uint64_t hash,
                                         std::string_view key,
                                         Node**& prev_cell) const {
  Node** cell = const_cast<Node**>(&s.buckets[bucket_of(s, hash)].head);
  Node* n = tx_load(*cell);
  while (n != nullptr) {
    if (n->hash == hash && tx_load(n->key)->equals(key)) break;
    cell = &n->next;
    n = tx_load(*cell);
  }
  prev_cell = cell;
  return n;
}

std::int32_t ShardedDb::find_validated(Slot& s, std::uint64_t hash,
                                       std::string_view key,
                                       std::uint64_t snapshot,
                                       Node*& node) const {
  const Bucket& b = s.buckets[bucket_of(s, hash)];
  if (s.ver.changed_since(snapshot)) return -1;
  Node* n = tx_load(b.head);
  if (s.ver.changed_since(snapshot)) return -1;
  while (n != nullptr) {
    const std::uint64_t nh = n->hash;
    Blob* kb = tx_load(n->key);
    if (s.ver.changed_since(snapshot)) return -1;
    if (nh == hash && kb != nullptr && kb->equals(key)) {
      node = n;
      return 1;
    }
    n = tx_load(n->next);
    if (s.ver.changed_since(snapshot)) return -1;
  }
  node = nullptr;
  return 0;
}

void ShardedDb::retire_blob(Slot& s, Blob* blob) {
  if (blob == nullptr) return;
  tx_store(blob->next_retired, tx_load(s.retired_blobs));
  tx_store(s.retired_blobs, blob);
}

void ShardedDb::retire_node(Slot& s, Node** prev_cell, Node* node) {
  tx_store(*prev_cell, tx_load(node->next));
  retire_blob(s, tx_load(node->key));
  retire_blob(s, tx_load(node->val));
  tx_store(node->key, static_cast<Blob*>(nullptr));
  tx_store(node->val, static_cast<Blob*>(nullptr));
  tx_store(node->next, tx_load(s.retired_nodes));
  tx_store(s.retired_nodes, node);
  tx_store(s.live_count, tx_load(s.live_count) - 1);
}

template <typename Body>
void ShardedDb::with_method_read_cs(const ScopeInfo& outer_scope,
                                    Body&& body) {
  method_.elide_shared(outer_scope,
             [&](CsExec& cs) -> CsBody {
               if (cs.in_swopt()) {
                 // The external SWOpt path only needs to dodge whole-DB
                 // operations (clear), which bump db_ver_; record-level
                 // safety comes from the nested slot critical section.
                 const std::uint64_t v = db_ver_.get_ver(true);
                 if (db_ver_.changed_since(v)) return CsBody::kRetrySwOpt;
               }
               body(cs);
               return CsBody::kDone;
             });
}

bool ShardedDb::set(std::string_view key, std::string_view value) {
  const std::uint64_t h = hash_of(key);
  Blob* kblob = Blob::make(key);
  Blob* vblob = Blob::make(value);
  Node* fresh = new Node();
  bool inserted = false;
  bool consumed = false;
  with_method_read_cs(scopes_->scopes.set_outer, [&](CsExec&) {
    Slot& s = slot_for(h);
    execute_cs(lock_api<TatasLock>(), &s.lock, s.md,
               scopes_->scopes.set_slot, [&](CsExec&) {
                 inserted = false;
                 consumed = false;
                 Node** cell = nullptr;
                 Node* n = find_in_slot(s, h, key, cell);
                 if (n != nullptr) {
                   Blob* old = tx_load(n->val);
                   tx_store(n->val, vblob);
                   retire_blob(s, old);
                   return;
                 }
                 fresh->hash = h;
                 fresh->key = kblob;
                 fresh->val = vblob;
                 ConflictingAction guard(s.ver, s.md);
                 fresh->next = tx_load(s.buckets[bucket_of(s, h)].head);
                 tx_store(s.buckets[bucket_of(s, h)].head, fresh);
                 tx_store(s.live_count, tx_load(s.live_count) + 1);
                 inserted = true;
                 consumed = true;
               });
  });
  if (!consumed) {
    Blob::destroy(kblob);
    delete fresh;
  }
  return inserted;
}

bool ShardedDb::get(std::string_view key, std::string& out) {
  const std::uint64_t h = hash_of(key);
  bool found = false;
  with_method_read_cs(scopes_->scopes.get_outer, [&](CsExec& outer) {
    Slot& s = slot_for(h);
    execute_cs(
        lock_api<TatasLock>(), &s.lock, s.md, scopes_->scopes.get_slot,
        [&](CsExec& ics) -> CsBody {
          found = false;
          if (ics.in_swopt()) {
            const std::uint64_t v = s.ver.get_ver(true);
            Node* n = nullptr;
            const std::int32_t r = find_validated(s, h, key, v, n);
            if (r < 0) return CsBody::kRetrySwOpt;
            if (r == 0) return CsBody::kDone;  // miss: pure SWOpt success
                                               // (the paper's nomutate 42%)
            if (!cfg_.swopt_get_copies) ics.swopt_self_abort();
            Blob* val = tx_load(n->val);
            if (val == nullptr || s.ver.changed_since(v)) {
              return CsBody::kRetrySwOpt;
            }
            const std::string_view sv = val->view();
            out.assign(sv.data(), sv.size());
            if (s.ver.changed_since(v)) return CsBody::kRetrySwOpt;
            found = true;
            return CsBody::kDone;
          }
          Node** cell = nullptr;
          Node* n = find_in_slot(s, h, key, cell);
          if (n != nullptr) {
            const std::string_view sv = tx_load(n->val)->view();
            out.assign(sv.data(), sv.size());
            found = true;
          }
          return CsBody::kDone;
        });
    // §5 nomutate fidelity: a hit must hold the method read lock (Kyoto
    // pins the record under it), so an externally-optimistic execution
    // self-aborts and retries pessimistically; only misses complete in
    // external SWOpt.
    if (found && outer.in_swopt() && cfg_.outer_swopt_hit_requires_lock) {
      outer.swopt_self_abort();
    }
  });
  return found;
}

bool ShardedDb::remove(std::string_view key) {
  const std::uint64_t h = hash_of(key);
  bool removed = false;
  with_method_read_cs(scopes_->scopes.remove_outer, [&](CsExec&) {
    Slot& s = slot_for(h);
    execute_cs(lock_api<TatasLock>(), &s.lock, s.md,
               scopes_->scopes.remove_slot, [&](CsExec&) {
                 removed = false;
                 Node** cell = nullptr;
                 Node* n = find_in_slot(s, h, key, cell);
                 if (n != nullptr) {
                   ConflictingAction guard(s.ver, s.md);
                   retire_node(s, cell, n);
                   removed = true;
                 }
               });
  });
  return removed;
}

void ShardedDb::append(std::string_view key, std::string_view suffix) {
  const std::uint64_t h = hash_of(key);
  // The fresh node/key are only needed when the key is absent.
  Blob* kblob = Blob::make(key);
  Node* fresh = new Node();
  bool consumed = false;
  with_method_read_cs(scopes_->scopes.append_outer, [&](CsExec&) {
    Slot& s = slot_for(h);
    execute_cs(
        lock_api<TatasLock>(), &s.lock, s.md, scopes_->scopes.append_slot,
        [&](CsExec&) {
          consumed = false;
          Node** cell = nullptr;
          Node* n = find_in_slot(s, h, key, cell);
          if (n != nullptr) {
            // Read-modify-write: build the concatenation. The append slot
            // scope prohibits HTM, so this allocation cannot leak via an
            // emulated abort.
            Blob* old = tx_load(n->val);
            std::string next;
            const std::string_view ov = old->view();
            next.reserve(ov.size() + suffix.size());
            next.assign(ov.data(), ov.size());
            next.append(suffix.data(), suffix.size());
            tx_store(n->val, Blob::make(next));
            retire_blob(s, old);
            return;
          }
          fresh->hash = h;
          fresh->key = kblob;
          fresh->val = Blob::make(suffix);
          ConflictingAction guard(s.ver, s.md);
          fresh->next = tx_load(s.buckets[bucket_of(s, h)].head);
          tx_store(s.buckets[bucket_of(s, h)].head, fresh);
          tx_store(s.live_count, tx_load(s.live_count) + 1);
          consumed = true;
        });
  });
  if (!consumed) {
    Blob::destroy(kblob);
    delete fresh;
  }
}

void ShardedDb::clear() {
  method_.elide_exclusive(
      scopes_->scopes.clear_outer, [&](CsExec&) {
               ConflictingAction db_guard(db_ver_, method_.md());
               for (auto& sp : slots_) {
                 Slot& s = *sp;
                 execute_cs(
                     lock_api<TatasLock>(), &s.lock, s.md,
                     scopes_->scopes.clear_slot, [&](CsExec&) {
                       ConflictingAction guard(s.ver, s.md);
                       for (Bucket& b : s.buckets) {
                         Node* n = tx_load(b.head);
                         while (n != nullptr) {
                           Node* next = tx_load(n->next);
                           retire_blob(s, tx_load(n->key));
                           retire_blob(s, tx_load(n->val));
                           tx_store(n->key, static_cast<Blob*>(nullptr));
                           tx_store(n->val, static_cast<Blob*>(nullptr));
                           tx_store(n->next, tx_load(s.retired_nodes));
                           tx_store(s.retired_nodes, n);
                           n = next;
                         }
                         tx_store(b.head, static_cast<Node*>(nullptr));
                       }
                       tx_store(s.live_count, std::uint64_t{0});
                     });
               }
             });
}

std::uint64_t ShardedDb::iterate(
    const std::function<void(std::string_view, std::string_view)>& fn) {
  std::uint64_t total = 0;
  method_.elide_shared(
             scopes_->scopes.iterate_outer, [&](CsExec&) {
               total = 0;
               for (auto& sp : slots_) {
                 Slot& s = *sp;
                 std::uint64_t visited = 0;  // attempt-local tally
                 execute_cs(
                     lock_api<TatasLock>(), &s.lock, s.md,
                     scopes_->scopes.iterate_slot, [&](CsExec&) {
                       visited = 0;
                       for (Bucket& b : s.buckets) {
                         for (Node* n = tx_load(b.head); n != nullptr;
                              n = tx_load(n->next)) {
                           Blob* k = tx_load(n->key);
                           Blob* v = tx_load(n->val);
                           if (k != nullptr && v != nullptr) {
                             fn(k->view(), v->view());
                             ++visited;
                           }
                         }
                       }
                     });
                 total += visited;
               }
             });
  return total;
}

std::uint64_t ShardedDb::count() {
  std::uint64_t total = 0;
  method_.elide_shared(scopes_->scopes.count_outer,
             [&](CsExec&) {
               total = 0;
               for (auto& sp : slots_) total += tx_load(sp->live_count);
             });
  return total;
}

}  // namespace ale::kvdb
