#include "kvdb/sharded_db.hpp"

#include <algorithm>
#include <array>

namespace ale::kvdb {

namespace {

// Scope bundle per ShardedDb instance: flags depend on the instance config,
// so these cannot be function-local statics. Labels are prefixed with the
// instance name ("kcdb" historically) so multi-instance deployments — the
// ale::svc service runs one ShardedDb per shard — get per-shard granule
// labels in telemetry ("svc.s3.set.outer" vs "svc.s7.set.outer").
struct Scopes {
  // Backing storage for the ScopeInfo labels; declared (and therefore
  // initialized) before the infos that point into it.
  std::array<std::string, 17> names;
  ScopeInfo set_outer, get_outer, remove_outer, append_outer;
  ScopeInfo clear_outer, count_outer;
  ScopeInfo iterate_outer, iterate_slot;
  ScopeInfo set_slot, get_slot, remove_slot, append_slot, clear_slot;
  ScopeInfo batch_outer, batch_slot;
  ScopeInfo scan_outer, scan_slot;

  // Outer scopes carry their readers-writer mode tag: record methods run
  // shared, whole-DB methods exclusive (see ElidableSharedLock).
  Scopes(const ShardedDb::Config& cfg, const std::string& prefix)
      : names{prefix + ".set.outer",     prefix + ".get.outer",
              prefix + ".remove.outer",  prefix + ".append.outer",
              prefix + ".clear.outer",   prefix + ".count.outer",
              prefix + ".iterate.outer", prefix + ".iterate.slot",
              prefix + ".set.slot",      prefix + ".get.slot",
              prefix + ".remove.slot",   prefix + ".append.slot",
              prefix + ".clear.slot",    prefix + ".batch.outer",
              prefix + ".batch.slot",    prefix + ".scan.outer",
              prefix + ".scan.slot"},
        set_outer(names[0].c_str(), cfg.outer_swopt, cfg.outer_htm,
                  static_cast<std::uint8_t>(RwMode::kShared)),
        get_outer(names[1].c_str(), cfg.outer_swopt, cfg.outer_htm,
                  static_cast<std::uint8_t>(RwMode::kShared)),
        remove_outer(names[2].c_str(), cfg.outer_swopt, cfg.outer_htm,
                     static_cast<std::uint8_t>(RwMode::kShared)),
        append_outer(names[3].c_str(), cfg.outer_swopt, cfg.outer_htm,
                     static_cast<std::uint8_t>(RwMode::kShared)),
        clear_outer(names[4].c_str(), false, cfg.outer_htm,
                    static_cast<std::uint8_t>(RwMode::kExclusive)),
        count_outer(names[5].c_str(), false, cfg.outer_htm,
                    static_cast<std::uint8_t>(RwMode::kShared)),
        iterate_outer(names[6].c_str(), false, cfg.outer_htm,
                      static_cast<std::uint8_t>(RwMode::kShared)),
        iterate_slot(names[7].c_str(), false, cfg.inner_htm),
        set_slot(names[8].c_str(), false, cfg.inner_htm),
        get_slot(names[9].c_str(), cfg.inner_get_swopt, cfg.inner_htm),
        remove_slot(names[10].c_str(), false, cfg.inner_htm),
        // append allocates inside the critical section; prohibiting HTM
        // here keeps aborts allocation-free (and exercises the §4.1
        // nested-no-HTM abort path under real workloads).
        append_slot(names[11].c_str(), false, false),
        clear_slot(names[12].c_str(), false, cfg.inner_htm),
        batch_outer(names[13].c_str(), cfg.outer_swopt, cfg.outer_htm,
                    static_cast<std::uint8_t>(RwMode::kShared)),
        batch_slot(names[14].c_str(), false, cfg.inner_htm),
        // Scans copy record strings (allocation) inside the critical
        // section: SWOpt retries re-run cleanly, but an HTM abort could
        // leak the copies, so both scan scopes prohibit HTM (the same
        // discipline as append_slot).
        scan_outer(names[15].c_str(), cfg.outer_swopt, false,
                   static_cast<std::uint8_t>(RwMode::kShared)),
        scan_slot(names[16].c_str(), false, false) {}
};

}  // namespace

// One Scopes bundle per live ShardedDb; stored via pimpl-lite map keyed by
// instance would be overkill — we simply own it.
struct ScopesHolder {
  Scopes scopes;
  ScopesHolder(const ShardedDb::Config& cfg, const std::string& prefix)
      : scopes(cfg, prefix) {}
};

std::uint64_t ShardedDb::hash_of(std::string_view key) noexcept {
  // FNV-1a, then a finalizer mix.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

ShardedDb::ShardedDb(Config cfg, std::string name)
    : cfg_(cfg), method_(name + ".methodLock", cfg.trylockspin) {
  if (cfg_.num_slots == 0) cfg_.num_slots = 1;
  slots_.reserve(cfg_.num_slots);
  for (std::size_t i = 0; i < cfg_.num_slots; ++i) {
    slots_.push_back(std::make_unique<Slot>(
        cfg_.buckets_per_slot == 0 ? 1 : cfg_.buckets_per_slot,
        name + ".slotLock"));
  }
  scopes_ = std::make_unique<ScopesHolder>(cfg_, name);
}

ShardedDb::~ShardedDb() {
  for (auto& sp : slots_) {
    Slot& s = *sp;
    for (Bucket& b : s.buckets) {
      Node* n = b.head;
      while (n != nullptr) {
        Node* next = n->next;
        Blob::destroy(n->key);
        Blob::destroy(n->val);
        delete n;
        n = next;
      }
    }
    Node* rn = s.retired_nodes;
    while (rn != nullptr) {
      Node* next = rn->next;
      delete rn;  // its blobs are on the retired-blob list
      rn = next;
    }
    Blob* rb = s.retired_blobs;
    while (rb != nullptr) {
      Blob* next = rb->next_retired;
      Blob::destroy(rb);
      rb = next;
    }
  }
}

ShardedDb::Node* ShardedDb::find_in_slot(Slot& s, std::uint64_t hash,
                                         std::string_view key,
                                         Node**& prev_cell) const {
  Node** cell = const_cast<Node**>(&s.buckets[bucket_of(s, hash)].head);
  Node* n = tx_load(*cell);
  while (n != nullptr) {
    if (n->hash == hash && tx_load(n->key)->equals(key)) break;
    cell = &n->next;
    n = tx_load(*cell);
  }
  prev_cell = cell;
  return n;
}

std::int32_t ShardedDb::find_validated(Slot& s, std::uint64_t hash,
                                       std::string_view key,
                                       std::uint64_t snapshot,
                                       Node*& node) const {
  const Bucket& b = s.buckets[bucket_of(s, hash)];
  if (s.ver.changed_since(snapshot)) return -1;
  Node* n = tx_load(b.head);
  if (s.ver.changed_since(snapshot)) return -1;
  while (n != nullptr) {
    const std::uint64_t nh = n->hash;
    Blob* kb = tx_load(n->key);
    if (s.ver.changed_since(snapshot)) return -1;
    if (nh == hash && kb != nullptr && kb->equals(key)) {
      node = n;
      return 1;
    }
    n = tx_load(n->next);
    if (s.ver.changed_since(snapshot)) return -1;
  }
  node = nullptr;
  return 0;
}

void ShardedDb::retire_blob(Slot& s, Blob* blob) {
  if (blob == nullptr) return;
  tx_store(blob->next_retired, tx_load(s.retired_blobs));
  tx_store(s.retired_blobs, blob);
}

void ShardedDb::retire_node(Slot& s, Node** prev_cell, Node* node) {
  tx_store(*prev_cell, tx_load(node->next));
  retire_blob(s, tx_load(node->key));
  retire_blob(s, tx_load(node->val));
  tx_store(node->key, static_cast<Blob*>(nullptr));
  tx_store(node->val, static_cast<Blob*>(nullptr));
  tx_store(node->next, tx_load(s.retired_nodes));
  tx_store(s.retired_nodes, node);
  tx_store(s.live_count, tx_load(s.live_count) - 1);
}

template <typename Body>
void ShardedDb::with_method_read_cs(const ScopeInfo& outer_scope,
                                    Body&& body) {
  method_.elide_shared(outer_scope,
             [&](CsExec& cs) -> CsBody {
               if (cs.in_swopt()) {
                 // The external SWOpt path only needs to dodge whole-DB
                 // operations (clear), which bump db_ver_; record-level
                 // safety comes from the nested slot critical section.
                 const std::uint64_t v = db_ver_.get_ver(true);
                 if (db_ver_.changed_since(v)) return CsBody::kRetrySwOpt;
               }
               body(cs);
               return CsBody::kDone;
             });
}

bool ShardedDb::set(std::string_view key, std::string_view value) {
  const std::uint64_t h = hash_of(key);
  Blob* kblob = Blob::make(key);
  Blob* vblob = Blob::make(value);
  Node* fresh = new Node();
  bool inserted = false;
  bool consumed = false;
  with_method_read_cs(scopes_->scopes.set_outer, [&](CsExec&) {
    Slot& s = slot_for(h);
    execute_cs(lock_api<TatasLock>(), &s.lock, s.md,
               scopes_->scopes.set_slot, [&](CsExec&) {
                 inserted = false;
                 consumed = false;
                 Node** cell = nullptr;
                 Node* n = find_in_slot(s, h, key, cell);
                 if (n != nullptr) {
                   Blob* old = tx_load(n->val);
                   tx_store(n->val, vblob);
                   retire_blob(s, old);
                   return;
                 }
                 fresh->hash = h;
                 fresh->key = kblob;
                 fresh->val = vblob;
                 ConflictingAction guard(s.ver, s.md);
                 fresh->next = tx_load(s.buckets[bucket_of(s, h)].head);
                 tx_store(s.buckets[bucket_of(s, h)].head, fresh);
                 tx_store(s.live_count, tx_load(s.live_count) + 1);
                 inserted = true;
                 consumed = true;
               });
  });
  if (!consumed) {
    Blob::destroy(kblob);
    delete fresh;
  }
  return inserted;
}

bool ShardedDb::get(std::string_view key, std::string& out) {
  const std::uint64_t h = hash_of(key);
  bool found = false;
  with_method_read_cs(scopes_->scopes.get_outer, [&](CsExec& outer) {
    Slot& s = slot_for(h);
    execute_cs(
        lock_api<TatasLock>(), &s.lock, s.md, scopes_->scopes.get_slot,
        [&](CsExec& ics) -> CsBody {
          found = false;
          if (ics.in_swopt()) {
            const std::uint64_t v = s.ver.get_ver(true);
            Node* n = nullptr;
            const std::int32_t r = find_validated(s, h, key, v, n);
            if (r < 0) return CsBody::kRetrySwOpt;
            if (r == 0) return CsBody::kDone;  // miss: pure SWOpt success
                                               // (the paper's nomutate 42%)
            if (!cfg_.swopt_get_copies) ics.swopt_self_abort();
            Blob* val = tx_load(n->val);
            if (val == nullptr || s.ver.changed_since(v)) {
              return CsBody::kRetrySwOpt;
            }
            const std::string_view sv = val->view();
            out.assign(sv.data(), sv.size());
            if (s.ver.changed_since(v)) return CsBody::kRetrySwOpt;
            found = true;
            return CsBody::kDone;
          }
          Node** cell = nullptr;
          Node* n = find_in_slot(s, h, key, cell);
          if (n != nullptr) {
            const std::string_view sv = tx_load(n->val)->view();
            out.assign(sv.data(), sv.size());
            found = true;
          }
          return CsBody::kDone;
        });
    // §5 nomutate fidelity: a hit must hold the method read lock (Kyoto
    // pins the record under it), so an externally-optimistic execution
    // self-aborts and retries pessimistically; only misses complete in
    // external SWOpt.
    if (found && outer.in_swopt() && cfg_.outer_swopt_hit_requires_lock) {
      outer.swopt_self_abort();
    }
  });
  return found;
}

bool ShardedDb::remove(std::string_view key) {
  const std::uint64_t h = hash_of(key);
  bool removed = false;
  with_method_read_cs(scopes_->scopes.remove_outer, [&](CsExec&) {
    Slot& s = slot_for(h);
    execute_cs(lock_api<TatasLock>(), &s.lock, s.md,
               scopes_->scopes.remove_slot, [&](CsExec&) {
                 removed = false;
                 Node** cell = nullptr;
                 Node* n = find_in_slot(s, h, key, cell);
                 if (n != nullptr) {
                   ConflictingAction guard(s.ver, s.md);
                   retire_node(s, cell, n);
                   removed = true;
                 }
               });
  });
  return removed;
}

void ShardedDb::append(std::string_view key, std::string_view suffix) {
  const std::uint64_t h = hash_of(key);
  // The fresh node/key are only needed when the key is absent.
  Blob* kblob = Blob::make(key);
  Node* fresh = new Node();
  bool consumed = false;
  with_method_read_cs(scopes_->scopes.append_outer, [&](CsExec&) {
    Slot& s = slot_for(h);
    execute_cs(
        lock_api<TatasLock>(), &s.lock, s.md, scopes_->scopes.append_slot,
        [&](CsExec&) {
          consumed = false;
          Node** cell = nullptr;
          Node* n = find_in_slot(s, h, key, cell);
          if (n != nullptr) {
            // Read-modify-write: build the concatenation. The append slot
            // scope prohibits HTM, so this allocation cannot leak via an
            // emulated abort.
            Blob* old = tx_load(n->val);
            std::string next;
            const std::string_view ov = old->view();
            next.reserve(ov.size() + suffix.size());
            next.assign(ov.data(), ov.size());
            next.append(suffix.data(), suffix.size());
            tx_store(n->val, Blob::make(next));
            retire_blob(s, old);
            return;
          }
          fresh->hash = h;
          fresh->key = kblob;
          fresh->val = Blob::make(suffix);
          ConflictingAction guard(s.ver, s.md);
          fresh->next = tx_load(s.buckets[bucket_of(s, h)].head);
          tx_store(s.buckets[bucket_of(s, h)].head, fresh);
          tx_store(s.live_count, tx_load(s.live_count) + 1);
          consumed = true;
        });
  });
  if (!consumed) {
    Blob::destroy(kblob);
    delete fresh;
  }
}

void ShardedDb::clear() {
  method_.elide_exclusive(
      scopes_->scopes.clear_outer, [&](CsExec&) {
               ConflictingAction db_guard(db_ver_, method_.md());
               for (auto& sp : slots_) {
                 Slot& s = *sp;
                 execute_cs(
                     lock_api<TatasLock>(), &s.lock, s.md,
                     scopes_->scopes.clear_slot, [&](CsExec&) {
                       ConflictingAction guard(s.ver, s.md);
                       for (Bucket& b : s.buckets) {
                         Node* n = tx_load(b.head);
                         while (n != nullptr) {
                           Node* next = tx_load(n->next);
                           retire_blob(s, tx_load(n->key));
                           retire_blob(s, tx_load(n->val));
                           tx_store(n->key, static_cast<Blob*>(nullptr));
                           tx_store(n->val, static_cast<Blob*>(nullptr));
                           tx_store(n->next, tx_load(s.retired_nodes));
                           tx_store(s.retired_nodes, n);
                           n = next;
                         }
                         tx_store(b.head, static_cast<Node*>(nullptr));
                       }
                       tx_store(s.live_count, std::uint64_t{0});
                     });
               }
             });
}

std::uint64_t ShardedDb::iterate(
    const std::function<void(std::string_view, std::string_view)>& fn) {
  std::uint64_t total = 0;
  method_.elide_shared(
             scopes_->scopes.iterate_outer, [&](CsExec&) {
               total = 0;
               for (auto& sp : slots_) {
                 Slot& s = *sp;
                 std::uint64_t visited = 0;  // attempt-local tally
                 execute_cs(
                     lock_api<TatasLock>(), &s.lock, s.md,
                     scopes_->scopes.iterate_slot, [&](CsExec&) {
                       visited = 0;
                       for (Bucket& b : s.buckets) {
                         for (Node* n = tx_load(b.head); n != nullptr;
                              n = tx_load(n->next)) {
                           Blob* k = tx_load(n->key);
                           Blob* v = tx_load(n->val);
                           if (k != nullptr && v != nullptr) {
                             fn(k->view(), v->view());
                             ++visited;
                           }
                         }
                       }
                     });
                 total += visited;
               }
             });
  return total;
}

ShardedDb::BatchResult ShardedDb::apply_batch(const BatchOp* ops,
                                              std::size_t n) {
  BatchResult result;
  if (ops == nullptr || n == 0) return result;

  // Pre-hash and group op indices by slot, preserving batch order within
  // each group (same-key ops must apply in batch order).
  std::vector<std::uint64_t> hashes(n);
  std::vector<std::vector<std::uint32_t>> groups(slots_.size());
  for (std::size_t i = 0; i < n; ++i) {
    hashes[i] = hash_of(ops[i].key);
    groups[hashes[i] % slots_.size()].push_back(
        static_cast<std::uint32_t>(i));
  }

  // Pre-allocate everything a set might need outside every critical
  // section (the same discipline as set()); attempt-local consumed flags
  // decide afterwards which allocations the committed attempt kept.
  std::vector<Blob*> kblobs(n, nullptr), vblobs(n, nullptr);
  std::vector<Node*> fresh(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].kind == BatchOp::Kind::kSet) {
      kblobs[i] = Blob::make(ops[i].key);
      vblobs[i] = Blob::make(ops[i].value);
      fresh[i] = new Node();
    }
  }
  std::vector<std::uint8_t> key_consumed(n, 0), val_consumed(n, 0);

  with_method_read_cs(scopes_->scopes.batch_outer, [&](CsExec&) {
    // Outer attempt start: the whole batch's tallies and flags reset.
    result = BatchResult{};
    std::fill(key_consumed.begin(), key_consumed.end(), 0);
    std::fill(val_consumed.begin(), val_consumed.end(), 0);
    for (std::size_t si = 0; si < groups.size(); ++si) {
      if (groups[si].empty()) continue;
      Slot& s = *slots_[si];
      std::uint64_t applied = 0, inserted = 0, removed = 0;
      execute_cs(
          lock_api<TatasLock>(), &s.lock, s.md, scopes_->scopes.batch_slot,
          [&](CsExec&) {
            // Inner attempt start: only this group's state resets (other
            // groups' outcomes from this outer attempt must survive).
            applied = inserted = removed = 0;
            for (const std::uint32_t i : groups[si]) {
              key_consumed[i] = 0;
              val_consumed[i] = 0;
            }
            for (const std::uint32_t i : groups[si]) {
              const BatchOp& op = ops[i];
              Node** cell = nullptr;
              Node* node = find_in_slot(s, hashes[i], op.key, cell);
              if (op.kind == BatchOp::Kind::kSet) {
                if (node != nullptr) {
                  Blob* old = tx_load(node->val);
                  tx_store(node->val, vblobs[i]);
                  retire_blob(s, old);
                  val_consumed[i] = 1;
                  ++applied;
                  continue;
                }
                Node* f = fresh[i];
                f->hash = hashes[i];
                f->key = kblobs[i];
                f->val = vblobs[i];
                ConflictingAction guard(s.ver, s.md);
                f->next = tx_load(s.buckets[bucket_of(s, hashes[i])].head);
                tx_store(s.buckets[bucket_of(s, hashes[i])].head, f);
                tx_store(s.live_count, tx_load(s.live_count) + 1);
                key_consumed[i] = 1;
                val_consumed[i] = 1;
                ++applied;
                ++inserted;
              } else if (node != nullptr) {  // kRemove, key present
                ConflictingAction guard(s.ver, s.md);
                retire_node(s, cell, node);
                ++applied;
                ++removed;
              }
            }
          });
      result.applied += applied;
      result.inserted += inserted;
      result.removed += removed;
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].kind != BatchOp::Kind::kSet) continue;
    if (key_consumed[i] == 0) {
      Blob::destroy(kblobs[i]);
      delete fresh[i];
    }
    if (val_consumed[i] == 0) Blob::destroy(vblobs[i]);
  }
  return result;
}

std::uint64_t ShardedDb::for_each_in_slot(
    std::size_t slot_index,
    const std::function<void(std::string_view, std::string_view)>& fn) {
  if (slot_index >= slots_.size()) return 0;
  std::uint64_t visited = 0;
  with_method_read_cs(scopes_->scopes.scan_outer, [&](CsExec&) {
    Slot& s = *slots_[slot_index];
    std::uint64_t tally = 0;  // attempt-local
    execute_cs(lock_api<TatasLock>(), &s.lock, s.md,
               scopes_->scopes.scan_slot, [&](CsExec&) {
                 tally = 0;
                 for (Bucket& b : s.buckets) {
                   for (Node* nd = tx_load(b.head); nd != nullptr;
                        nd = tx_load(nd->next)) {
                     Blob* k = tx_load(nd->key);
                     Blob* v = tx_load(nd->val);
                     if (k != nullptr && v != nullptr) {
                       fn(k->view(), v->view());
                       ++tally;
                     }
                   }
                 }
               });
    visited = tally;
  });
  return visited;
}

std::uint64_t ShardedDb::snapshot_slot(
    std::size_t slot_index, std::size_t limit,
    std::vector<std::pair<std::string, std::string>>& out) {
  out.clear();
  if (slot_index >= slots_.size() || limit == 0) return 0;
  std::vector<std::pair<std::string, std::string>> local;
  with_method_read_cs(scopes_->scopes.scan_outer, [&](CsExec&) {
    Slot& s = *slots_[slot_index];
    execute_cs(lock_api<TatasLock>(), &s.lock, s.md,
               scopes_->scopes.scan_slot, [&](CsExec&) {
                 local.clear();
                 for (Bucket& b : s.buckets) {
                   if (local.size() >= limit) break;
                   for (Node* nd = tx_load(b.head);
                        nd != nullptr && local.size() < limit;
                        nd = tx_load(nd->next)) {
                     Blob* k = tx_load(nd->key);
                     Blob* v = tx_load(nd->val);
                     if (k != nullptr && v != nullptr) {
                       local.emplace_back(std::string(k->view()),
                                          std::string(v->view()));
                     }
                   }
                 }
               });
  });
  out = std::move(local);
  return out.size();
}

std::uint64_t ShardedDb::count() {
  std::uint64_t total = 0;
  method_.elide_shared(scopes_->scopes.count_outer,
             [&](CsExec&) {
               total = 0;
               for (auto& sp : slots_) total += tx_load(sp->live_count);
             });
  return total;
}

}  // namespace ale::kvdb
