// §3.4 / §5 statistics tables: the per-(lock, context) profiling report the
// ALE library produces, for an instrumented HashMap run and an instrumented
// wicked run. "Even without using HTM or SWOpt modes, these reports provide
// insights into application behavior" — this bench regenerates that table.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "hashmap/hashmap.hpp"
#include "kvdb/wicked.hpp"
#include "stats/table.hpp"
#include "telemetry/export.hpp"
#include "telemetry/snapshot.hpp"

int main() {
  using namespace ale;
  using namespace ale::bench;
  set_profile("haswell");

  // Trace mode decisions / aborts / phase transitions during both runs so
  // the telemetry section at the end has something to show. (Exporting the
  // same data as the text tables below is the telemetry layer's job:
  // ALE_TELEMETRY=json:path does it for any binary; here we drain by hand.)
  telemetry::set_trace_enabled(true);
  telemetry::set_trace_sample_rate(0.03);

  std::printf("=== Statistics & profiling report (per <lock, context> "
              "granule) ===\n");
  print_run_seed();
  std::printf("\n");

  // HashMap under the All policy: every mode shows up in the table.
  install_policy_spec("static-all-5:3");
  {
    AleHashMap map(1024, "report.tblLock");
    for (std::uint64_t k = 0; k < 2048; k += 2) map.insert(k, k);
    timed_run(4, 0.5, [&](unsigned, Xoshiro256& rng) {
      const std::uint64_t k = rng.next_below(2048);
      std::uint64_t v = 0;
      const double roll = rng.next_double();
      if (roll < 0.1) {
        map.insert(k, k);
      } else if (roll < 0.2) {
        map.remove(k);
      } else {
        map.get(k, v);
      }
    });
    std::printf("--- HashMap, Static-All-5:3, 20%% mutate, 4 threads ---\n");
    print_lock_report(std::cout, map.lock_md());
  }

  // Wicked under adaptive: nested contexts appear as composite paths.
  install_policy_spec("adaptive");
  {
    kvdb::ShardedDb db(kvdb::DbConfig{}, "report.kcdb");
    kvdb::WickedConfig cfg;
    cfg.key_range = 2000;
    kvdb::wicked_prefill(db, cfg);
    thread_local std::string k, v;
    timed_run(4, 0.5, [&](unsigned, Xoshiro256& rng) {
      kvdb::wicked_step(db, cfg, rng, k, v);
    });
    std::printf("\n--- ShardedDb (wicked), Adaptive, 4 threads ---\n");
    std::printf("(method lock + slot 0 shown; note nested context paths)\n");
    print_lock_report(std::cout, db.method_lock_md());
    print_lock_report(std::cout, db.slot_lock_md(0));

    std::printf("\n--- guidance derived from the same statistics (§3.4) "
                "---\n");
    print_guidance(std::cout);

    std::printf("\n--- telemetry: decision trace summary (sampled at 3%%) "
                "---\n");
    const telemetry::Snapshot snap = telemetry::capture_snapshot();
    std::map<std::string, std::uint64_t> by_kind;
    for (const auto& e : snap.events) ++by_kind[e.kind];
    TextTable events({"event kind", "count", "example detail"});
    for (const auto& [kind, count] : by_kind) {
      std::string example;
      for (const auto& e : snap.events) {
        if (e.kind != kind) continue;
        example = !e.detail.empty() ? e.detail
                  : !e.cause.empty() ? e.cause
                                     : e.mode;
        break;
      }
      events.add_row({kind, TextTable::fmt(count), example});
    }
    events.print(std::cout);
    std::printf("(adaptive learning walk, from phase_transition events: ");
    bool first = true;
    for (const auto& e : snap.events) {
      if (e.kind != "phase_transition" ||
          e.lock != "report.kcdb.methodLock") {
        continue;
      }
      std::printf("%s%s", first ? "" : ", ", e.detail.c_str());
      first = false;
    }
    std::printf("%s)\n", first ? "none recorded" : "");
    std::printf("(full JSON/CSV dumps: run any binary with "
                "ALE_TELEMETRY=json:path[,interval_ms])\n");
  }
  ale::set_global_policy(nullptr);
  telemetry::set_trace_enabled(false);
  return 0;
}
