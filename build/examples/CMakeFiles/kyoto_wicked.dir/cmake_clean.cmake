file(REMOVE_RECURSE
  "CMakeFiles/kyoto_wicked.dir/kyoto_wicked.cpp.o"
  "CMakeFiles/kyoto_wicked.dir/kyoto_wicked.cpp.o.d"
  "kyoto_wicked"
  "kyoto_wicked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kyoto_wicked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
