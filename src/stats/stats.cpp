// Mostly header-only module; this TU anchors the static library and hosts
// the process-wide stripe-slot assignment for striped granule counters.
#include "stats/bfp_counter.hpp"
#include "stats/histogram.hpp"
#include "stats/sampled_time.hpp"
#include "stats/striped_counter.hpp"
#include "stats/table.hpp"

#include <atomic>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/env.hpp"

namespace ale {

template class AttemptHistogram<64>;

namespace {

unsigned compute_stripe_count() noexcept {
  unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) ncpu = 1;
  if (ncpu > kMaxStatStripes) ncpu = kMaxStatStripes;
  std::int64_t n = env_int("ALE_STAT_STRIPES", static_cast<std::int64_t>(ncpu));
  if (n < 1) n = 1;
  if (n > static_cast<std::int64_t>(kMaxStatStripes)) n = kMaxStatStripes;
  return static_cast<unsigned>(n);
}

std::atomic<unsigned> g_next_stripe{0};

#if defined(__linux__)
constexpr bool kHaveGetCpu = true;
#else
constexpr bool kHaveGetCpu = false;
#endif

std::atomic<bool> g_cpu_stripes{kHaveGetCpu};

[[maybe_unused]] const bool g_cpu_stripes_env_applied = [] {
  g_cpu_stripes.store(kHaveGetCpu && env_bool("ALE_STAT_CPU_STRIPES", true),
                      std::memory_order_relaxed);
  return true;
}();

}  // namespace

unsigned stat_stripe_count() noexcept {
  static const unsigned count = compute_stripe_count();
  return count;
}

unsigned my_stat_stripe() noexcept {
  thread_local const unsigned slot =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed) %
      stat_stripe_count();
  return slot;
}

bool stat_cpu_stripes_enabled() noexcept {
  return g_cpu_stripes.load(std::memory_order_relaxed);
}

void set_stat_cpu_stripes(bool enabled) noexcept {
  g_cpu_stripes.store(kHaveGetCpu && enabled, std::memory_order_relaxed);
}

unsigned current_stat_stripe() noexcept {
#if defined(__linux__)
  // sched_getcpu() is rseq-backed in modern glibc (a TLS load); the 64-call
  // refresh keeps even syscall-path libcs off the hot path. A stale CPU id
  // after migration only costs stripe locality, never correctness.
  struct CpuCache {
    unsigned stripe = 0;
    unsigned ticks = 0;
  };
  thread_local CpuCache cache;
  if ((cache.ticks++ & 63) == 0) {
    const int cpu = sched_getcpu();
    cache.stripe = cpu >= 0
                       ? static_cast<unsigned>(cpu) % stat_stripe_count()
                       : my_stat_stripe();
  }
  return cache.stripe;
#else
  return my_stat_stripe();
#endif
}

}  // namespace ale
