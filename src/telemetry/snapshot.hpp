// Lock-free snapshots over ALE's statistics tables: the read side of
// `ale::telemetry`.
//
// capture_snapshot() walks the live LockMd registry and every (lock,
// context) granule, copying the BFP counter estimates and sampled-timing
// summaries into plain values — a point-in-time view an exporter, dashboard
// or test can consume without touching atomics again. Writers are never
// blocked: the reader takes no lock a critical section ever takes (only the
// registry mutex and each lock's granule-creation lock, both off the hot
// path), and per-granule consistency is best-effort with bounded re-reads
// (see capture_snapshot).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mode.hpp"
#include "htm/abort.hpp"
#include "telemetry/trace.hpp"

namespace ale::telemetry {

/// Per-mode counters and timings of one granule (plain copies of the BFP /
/// SampledTime estimates; see §4.3 for their error bounds).
struct ModeSnapshot {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  double exec_mean_ns = 0.0;       ///< mean whole-execution time (sampled)
  std::uint64_t exec_samples = 0;  ///< timing samples behind exec_mean_ns
  double fail_mean_ns = 0.0;       ///< mean failed-attempt time (HTM only)
  std::uint64_t fail_samples = 0;
};

/// One (lock, context) granule: everything GranuleStats holds, flattened.
struct GranuleSnapshot {
  std::string context;  ///< calling-context path, e.g. "<root>/get.outer"
  std::uint64_t executions = 0;
  std::array<ModeSnapshot, kNumExecModes> modes{};  ///< indexed by ExecMode
  std::array<std::uint64_t, htm::kNumAbortCauses> abort_causes{};
  std::uint64_t swopt_failures = 0;
  double lock_wait_mean_ns = 0.0;
  std::uint64_t lock_wait_samples = 0;

  const ModeSnapshot& of(ExecMode m) const noexcept {
    return modes[static_cast<std::size_t>(m)];
  }
};

/// One ALE-enabled lock with all its granules, plus the resolved policy and
/// — when the adaptive policy governs it — the current learning phase.
struct LockSnapshot {
  std::string name;
  std::string policy;         ///< resolved policy name ("adaptive", ...)
  bool has_phase = false;     ///< true when the adaptive fields are valid
  std::uint32_t phase = 0;    ///< packed phase word (major<<8 | sub)
  std::string phase_name;     ///< e.g. "HL.sub1", "Converged"
  std::uint64_t relearn_count = 0;
  std::uint64_t total_executions = 0;
  std::vector<GranuleSnapshot> granules;
};

/// A drained TraceEvent with its identities resolved to names.
struct EventRecord {
  std::uint64_t ticks = 0;
  std::string kind;
  std::string lock;     ///< lock name, or "" when not lock-scoped
  std::string context;  ///< context path, or "" when not granule-scoped
  std::string mode;     ///< ExecMode name, or ""
  std::string cause;    ///< abort cause name, or ""
  std::string detail;   ///< kind-specific rendering (phase names, rounds)
  std::uint32_t aux32 = 0;
};

/// The full telemetry snapshot: metrics plus (optionally) the event trace.
struct Snapshot {
  std::uint64_t captured_ticks = 0;
  double ticks_per_ns = 0.0;
  std::string global_policy;
  std::vector<LockSnapshot> locks;
  std::vector<EventRecord> events;
  std::uint64_t events_dropped = 0;  ///< ring overwrites since last reset
};

struct SnapshotOptions {
  /// Drain and resolve the decision trace into Snapshot::events.
  bool include_events = true;
  /// Skip granules with fewer executions than this (BFP estimate).
  std::uint64_t min_executions = 0;
};

/// Capture a point-in-time view of every registered lock. Per granule the
/// executions counter is re-read after copying and the copy retried (up to
/// 3 times) if it moved, so each granule row is internally consistent
/// whenever it is quiescent for ~a microsecond; cross-granule skew is
/// bounded by the walk time. Never blocks writers.
Snapshot capture_snapshot(const SnapshotOptions& opts = {});

/// Resolve already-drained raw events against the live lock registry and
/// context tree (exposed separately for tests and custom drains).
std::vector<EventRecord> resolve_events(const std::vector<TraceEvent>& raw);

}  // namespace ale::telemetry
