// §3.4 guidance: heuristic advice derived from the collected statistics.
#include <gtest/gtest.h>

#include "core/ale.hpp"
#include "policy/static_policy.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct GuidanceTest : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
  void TearDown() override { set_global_policy(nullptr); }

  static bool has_advice_for(const std::vector<GuidanceEntry>& entries,
                             const std::string& lock,
                             const std::string& needle) {
    for (const auto& e : entries) {
      if (e.lock == lock && e.advice.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

TEST_F(GuidanceTest, QuietSystemYieldsNoGuidance) {
  TatasLock lock;
  LockMd md("guide.quiet.unique");
  static ScopeInfo scope("cs");
  for (int i = 0; i < 400; ++i) {
    execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec&) {});
  }
  const auto entries = analyze_guidance();
  EXPECT_FALSE(has_advice_for(entries, "guide.quiet.unique", ""));
}

TEST_F(GuidanceTest, CapacityBoundCsIsFlagged) {
  htm::Config c;
  c.backend = htm::BackendKind::kEmulated;
  c.profile = htm::ideal_profile();
  c.profile.write_cap_lines = 2;
  htm::configure(c);
  test::PolicyInstaller p(std::make_unique<StaticPolicy>(
      StaticPolicyConfig{.x = 2, .y = 0, .use_swopt = false}));
  TatasLock lock;
  LockMd md("guide.capacity.unique");
  static ScopeInfo scope("bigcs");
  std::vector<std::uint64_t> big(512, 0);
  for (int i = 0; i < 400; ++i) {
    execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec&) {
      for (std::size_t k = 0; k < big.size(); k += 8) {
        tx_store(big[k], tx_load(big[k]) + 1);
      }
    });
  }
  const auto entries = analyze_guidance();
  EXPECT_TRUE(has_advice_for(entries, "guide.capacity.unique", "capacity"));
  std::ostringstream ss;
  print_guidance(ss);
  EXPECT_NE(ss.str().find("guide.capacity.unique"), std::string::npos);
}

TEST_F(GuidanceTest, ThrashingSwOptIsFlagged) {
  StaticPolicyConfig cfg;
  cfg.use_htm = false;
  cfg.y = 3;
  test::PolicyInstaller p(std::make_unique<StaticPolicy>(cfg));
  TatasLock lock;
  LockMd md("guide.thrash.unique");
  static ScopeInfo scope("cs", /*has_swopt=*/true);
  Xoshiro256 rng(1);
  for (int i = 0; i < 600; ++i) {
    execute_cs(lock_api<TatasLock>(), &lock, md, scope,
               [&](CsExec& cs) -> CsBody {
                 if (cs.in_swopt() && rng.next_bool(0.8)) {
                   return CsBody::kRetrySwOpt;  // mostly invalidated
                 }
                 return CsBody::kDone;
               });
  }
  const auto entries = analyze_guidance();
  EXPECT_TRUE(has_advice_for(entries, "guide.thrash.unique", "retries"));
}

TEST_F(GuidanceTest, MinExecutionFilterApplies) {
  TatasLock lock;
  LockMd md("guide.rare.unique");
  static ScopeInfo scope("cs");
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec&) {});
  for (const auto& e : analyze_guidance(/*min_executions=*/100)) {
    EXPECT_NE(e.lock, "guide.rare.unique");
  }
}

TEST_F(GuidanceTest, EmptyGuidancePrintsPlaceholder) {
  std::ostringstream ss;
  print_guidance(ss, /*min_executions=*/std::uint64_t{1} << 60);
  EXPECT_NE(ss.str().find("no guidance"), std::string::npos);
}

}  // namespace
}  // namespace ale
