file(REMOVE_RECURSE
  "libale_sync.a"
)
