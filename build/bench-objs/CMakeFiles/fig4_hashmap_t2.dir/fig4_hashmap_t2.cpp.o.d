bench-objs/CMakeFiles/fig4_hashmap_t2.dir/fig4_hashmap_t2.cpp.o: \
 /root/repo/bench/fig4_hashmap_t2.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/hashmap_figure.hpp
