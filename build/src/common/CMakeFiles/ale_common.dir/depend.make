# Empty dependencies file for ale_common.
# This may be replaced when dependencies are built.
