# Empty dependencies file for ale_stats.
# This may be replaced when dependencies are built.
