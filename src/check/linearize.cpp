#include "check/linearize.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <tuple>

namespace ale::check {

std::string format_op(const Op& op) {
  char buf[128];
  const char* verdict;
  char value[32];
  value[0] = '\0';
  switch (op.kind) {
    case OpKind::kGet:
      verdict = op.ok ? "hit" : "miss";
      if (op.ok) std::snprintf(value, sizeof value, "->%llu",
                               static_cast<unsigned long long>(op.out));
      break;
    case OpKind::kInsert:
    case OpKind::kSet:
      verdict = op.ok ? "fresh" : "overwrote";
      std::snprintf(value, sizeof value, ",%llu",
                    static_cast<unsigned long long>(op.arg));
      break;
    case OpKind::kRemove:
      verdict = op.ok ? "removed" : "absent";
      break;
    default:
      verdict = "?";
      break;
  }
  std::snprintf(buf, sizeof buf, "t%u %s(%llu%s)=%s%s [%llu,%llu]",
                op.thread, to_string(op.kind),
                static_cast<unsigned long long>(op.key),
                op.kind == OpKind::kInsert || op.kind == OpKind::kSet
                    ? value
                    : "",
                verdict,
                op.kind == OpKind::kGet ? value : "",
                static_cast<unsigned long long>(op.invoke),
                static_cast<unsigned long long>(op.response));
  return buf;
}

namespace {

using State = std::optional<std::uint64_t>;

// Sequential map spec: may `op` linearize in `state`, and if so what does
// the state become? (insert and set share overwrite semantics: the return
// value reports whether the key was new.)
bool step(const Op& op, State& state) {
  switch (op.kind) {
    case OpKind::kGet:
      if (op.ok) return state.has_value() && *state == op.out;
      return !state.has_value();
    case OpKind::kInsert:
    case OpKind::kSet: {
      if (op.ok != !state.has_value()) return false;
      state = op.arg;
      return true;
    }
    case OpKind::kRemove: {
      if (op.ok != state.has_value()) return false;
      state.reset();
      return true;
    }
  }
  return false;
}

enum class Verdict { kOk, kFail, kAbort };

struct KeySearch {
  const std::vector<Op>& ops;  // one key, sorted by invoke
  std::size_t max_states;
  // Exact memo of failed (linearized-set, state) pairs — no hashing, so a
  // collision can never fake a visited state into a false violation.
  std::set<std::tuple<std::uint64_t, bool, std::uint64_t>> failed;

  Verdict dfs(std::uint64_t mask, State state) {
    const std::uint64_t full = ops.size() == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << ops.size()) - 1;
    if (mask == full) return Verdict::kOk;
    const auto memo_key = std::make_tuple(mask, state.has_value(),
                                          state.value_or(0));
    if (failed.count(memo_key) != 0) return Verdict::kFail;
    if (failed.size() >= max_states) return Verdict::kAbort;

    // Minimal pending response: only ops invoked before it may go next.
    std::uint64_t min_response = ~std::uint64_t{0};
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if ((mask >> i) & 1) continue;
      min_response = std::min(min_response, ops[i].response);
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if ((mask >> i) & 1) continue;
      if (ops[i].invoke > min_response) continue;
      State next = state;
      if (!step(ops[i], next)) continue;
      const Verdict v = dfs(mask | (std::uint64_t{1} << i), next);
      if (v != Verdict::kFail) return v;
    }
    failed.insert(memo_key);
    return Verdict::kFail;
  }
};

}  // namespace

LinearizeResult check_map_history(
    const std::vector<Op>& history,
    const std::map<std::uint64_t, std::uint64_t>& initial,
    const LinearizeOptions& opts) {
  LinearizeResult result;

  // Per-key decomposition (locality): each op touches one key.
  std::map<std::uint64_t, std::vector<Op>> by_key;
  for (const Op& op : history) by_key[op.key].push_back(op);

  for (auto& [key, ops] : by_key) {
    std::sort(ops.begin(), ops.end(),
              [](const Op& a, const Op& b) { return a.invoke < b.invoke; });
    if (ops.size() > 64) {
      result.aborted = true;
      continue;  // mask is a u64; scenarios keep per-key op counts small
    }
    State state;
    if (auto it = initial.find(key); it != initial.end()) state = it->second;

    KeySearch search{ops, opts.max_states, {}};
    const Verdict v = search.dfs(0, state);
    if (v == Verdict::kAbort) {
      result.aborted = true;
    } else if (v == Verdict::kFail) {
      result.ok = false;
      std::string& ex = result.explanation;
      ex = "key " + std::to_string(key) + " has no linearization (initial ";
      ex += state.has_value() ? std::to_string(*state) : std::string("absent");
      ex += "):";
      for (const Op& op : ops) {
        ex += "\n    ";
        ex += format_op(op);
      }
      return result;
    }
  }
  return result;
}

}  // namespace ale::check
