file(REMOVE_RECURSE
  "../bench/fig5_kyoto_wicked"
  "../bench/fig5_kyoto_wicked.pdb"
  "CMakeFiles/fig5_kyoto_wicked.dir/fig5_kyoto_wicked.cpp.o"
  "CMakeFiles/fig5_kyoto_wicked.dir/fig5_kyoto_wicked.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_kyoto_wicked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
