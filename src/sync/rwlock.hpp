// Readers-writer spinlock with writer-preference, an update (intent) mode,
// plus the "trylockspin" acquisition pattern the paper discusses for the
// Kyoto Cabinet benchmark.
//
// ALE integrates with a readers-writer lock through *multiple* LockAPI
// views of the same object (see lockapi.hpp):
//   * the exclusive view: acquire = lock(), is_locked = is_locked() (any
//     holder conflicts with an elided writer),
//   * the shared view: acquire = lock_shared(), is_locked =
//     is_write_locked() (concurrent readers do not conflict with an elided
//     reader), and
//   * the update view: acquire = lock_update(), is_locked =
//     is_write_or_update_locked() (an elided updater conflicts with the
//     writer and with other updaters, but not with readers).
//
// Update mode is the classic "read now, maybe write later" intent lock: it
// admits concurrent readers, excludes other updaters and writers, and can
// upgrade() in place to the exclusive mode without releasing — the drain
// protocol cannot deadlock against a waiting writer because the writer's
// acquire CAS requires every other bit to be clear, and the update bit is
// exactly what the upgrader holds.
//
// Parking tier: one kParked bit is carved out of the reader-count field.
// It means "at least one waiter (of any mode) is parked on state_". The
// invariants that keep it sound:
//   * the bit is only ever set while some blocking bit/count is present, so
//     a fully free lock is exactly 0 and the uncontended paths never see it;
//   * every acquire condition masks the bit out, and every acquire CAS
//     target preserves it (an acquire must never clobber someone's wake
//     obligation);
//   * the release paths that clear a blocking condition check the bit and,
//     when set, clear it and wake ALL sleepers — mixed modes wait on the
//     same word, so a single targeted wake could land on a waiter that is
//     still blocked and walks back to sleep without re-waking others.
//     Woken waiters that remain blocked re-set the bit when they re-park.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/backoff.hpp"
#include "sync/parking.hpp"

namespace ale {

class RwSpinLock {
 public:
  RwSpinLock() = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  // ---- writer side ----

  void lock() noexcept {
    if (try_lock()) return;
    inject::maybe_stall(inject::Point::kRwAcquire, 0);
    Backoff backoff;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & ~(kWriterWait | kParked)) == 0) {
        if (state_.compare_exchange_weak(s, kWriterHeld | (s & kParked),
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      // Announce a waiting writer so new readers hold off (writer
      // preference bounds writer starvation under a reader stream).
      if ((s & kWriterWait) == 0) {
        state_.compare_exchange_weak(s, s | kWriterWait,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
        continue;
      }
      if (backoff.should_park()) {
        try_park(kWriterHeld | kUpdateHeld | kReaderMask,
                 static_cast<std::uint32_t>(backoff.spent()));
        backoff.note_wake();
        continue;
      }
      backoff.pause();
    }
  }

  bool try_lock() noexcept {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & ~(kWriterWait | kParked)) == 0) {
      if (state_.compare_exchange_weak(s, kWriterHeld | (s & kParked),
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void unlock() noexcept {
    // The exchange wipes the wait bit (waiting writers re-announce on their
    // next iteration) and reads the parked bit atomically with the release.
    if (state_.exchange(0, std::memory_order_release) & kParked) {
      parking::wake_all(state_);
    }
  }

  // ---- reader side ----

  void lock_shared() noexcept {
    check::preempt(check::Sp::kRwSharedAcquire);
    if (try_lock_shared()) return;
    inject::maybe_stall(inject::Point::kRwAcquire, 0);
    Backoff backoff;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & (kWriterHeld | kWriterWait)) == 0) {
        if (state_.compare_exchange_weak(s, s + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if (backoff.should_park()) {
        try_park(kWriterHeld | kWriterWait,
                 static_cast<std::uint32_t>(backoff.spent()));
        backoff.note_wake();
        continue;
      }
      backoff.pause();
    }
  }

  bool try_lock_shared() noexcept {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & (kWriterHeld | kWriterWait)) == 0) {
      if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void unlock_shared() noexcept {
    const std::uint32_t old = state_.fetch_sub(1, std::memory_order_release);
    // Only the LAST departing reader can unblock anyone (a parked writer or
    // an upgrader draining the count); earlier departures leave the bit for
    // it. Clearing before waking is safe: wake_all follows unconditionally,
    // and re-blocked wakeups re-set the bit.
    if ((old & kParked) != 0 && (old & kReaderMask) == 1) {
      state_.fetch_and(~kParked, std::memory_order_relaxed);
      parking::wake_all(state_);
    }
  }

  // ---- update (intent) side ----
  //
  // Coexists with readers; excludes writers and other updaters. Does not
  // set the writer-wait bit while waiting: an updater only blocks on the
  // (brief) writer/updater window, so it does not need admission
  // preference, and leaving readers flowing keeps the common read path
  // unaffected by a queued update.

  void lock_update() noexcept {
    check::preempt(check::Sp::kRwSharedAcquire);
    if (try_lock_update()) return;
    inject::maybe_stall(inject::Point::kRwAcquire, 0);
    Backoff backoff;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & (kWriterHeld | kWriterWait | kUpdateHeld)) == 0) {
        if (state_.compare_exchange_weak(s, s | kUpdateHeld,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if (backoff.should_park()) {
        try_park(kWriterHeld | kWriterWait | kUpdateHeld,
                 static_cast<std::uint32_t>(backoff.spent()));
        backoff.note_wake();
        continue;
      }
      backoff.pause();
    }
  }

  bool try_lock_update() noexcept {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & (kWriterHeld | kWriterWait | kUpdateHeld)) == 0) {
      if (state_.compare_exchange_weak(s, s | kUpdateHeld,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void unlock_update() noexcept {
    const std::uint32_t old =
        state_.fetch_and(~kUpdateHeld, std::memory_order_release);
    if (old & kParked) {
      state_.fetch_and(~kParked, std::memory_order_relaxed);
      parking::wake_all(state_);
    }
  }

  // Upgrade the held update lock to the exclusive lock, in place. Sets the
  // writer-wait bit (stopping new reader admissions), drains the readers
  // already inside, then swaps the update bit for the writer bit. Release
  // the upgraded lock with plain unlock().
  //
  // Deadlock-freedom vs. a concurrently waiting writer: the writer's CAS
  // requires every blocking bit to be clear, and our update bit keeps one
  // set for the whole drain — so the upgrader always wins the race and the
  // writer simply keeps waiting. The CAS below drops the wait bit; waiting
  // writers re-announce it on their next loop iteration. No wake on
  // success: an acquire unblocks nobody.
  void upgrade() noexcept {
    check::preempt(check::Sp::kRwUpgrade);
    inject::maybe_stall(inject::Point::kRwUpgrade, 0);
    Backoff backoff;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriterWait) == 0) {
        state_.compare_exchange_weak(s, s | kWriterWait,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
        continue;
      }
      if ((s & kReaderMask) == 0) {
        if (state_.compare_exchange_weak(s, kWriterHeld | (s & kParked),
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if (backoff.should_park()) {
        try_park(kReaderMask, static_cast<std::uint32_t>(backoff.spent()));
        backoff.note_wake();
        continue;
      }
      backoff.pause();
    }
  }

  // Non-blocking upgrade: succeeds only when no reader is inside right now.
  // Does not set the wait bit on failure (no side effects).
  bool try_upgrade() noexcept {
    check::preempt(check::Sp::kRwUpgrade);
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & kUpdateHeld) != 0 && (s & kReaderMask) == 0) {
      if (state_.compare_exchange_weak(s, kWriterHeld | (s & kParked),
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  // ---- trylockspin (Kyoto Cabinet's acquisition idiom, §5) ----
  // One cheap try first; fall back to the spinning slow path. Separated
  // from lock()/lock_shared() so benchmarks can account the try separately.

  void lock_trylockspin() noexcept {
    if (!try_lock()) lock();
  }

  void lock_shared_trylockspin() noexcept {
    if (!try_lock_shared()) lock_shared();
  }

  // ---- parked waits for the engine's pre-HTM "lock free" loops ----
  // One parked wait each, keyed to the matching subscription predicate.
  // All may return spuriously; callers re-check the predicate.

  void park_until_free(std::uint32_t spent_spins = 0) noexcept {
    try_park(kWriterHeld | kUpdateHeld | kReaderMask, spent_spins);
  }

  void park_until_write_free(std::uint32_t spent_spins = 0) noexcept {
    try_park(kWriterHeld, spent_spins);
  }

  void park_until_write_or_update_free(
      std::uint32_t spent_spins = 0) noexcept {
    try_park(kWriterHeld | kUpdateHeld, spent_spins);
  }

  // ---- predicates ----

  // Any holder at all (readers, updater, or writer). An elided *exclusive*
  // critical section conflicts with all of them, so this is its
  // subscription predicate.
  bool is_locked() const noexcept {
    return (state_.load(std::memory_order_acquire) &
            ~(kWriterWait | kParked)) != 0;
  }

  // Writer held. An elided *shared* critical section conflicts only with a
  // writer.
  bool is_write_locked() const noexcept {
    return (state_.load(std::memory_order_acquire) & kWriterHeld) != 0;
  }

  bool is_update_locked() const noexcept {
    return (state_.load(std::memory_order_acquire) & kUpdateHeld) != 0;
  }

  // Writer or updater held. An elided *update* critical section conflicts
  // with both (but not with readers), so this is its subscription
  // predicate.
  bool is_write_or_update_locked() const noexcept {
    return (state_.load(std::memory_order_acquire) &
            (kWriterHeld | kUpdateHeld)) != 0;
  }

  std::uint32_t reader_count() const noexcept {
    return state_.load(std::memory_order_acquire) & kReaderMask;
  }

  const void* subscription_word() const noexcept { return &state_; }

 private:
  static constexpr std::uint32_t kWriterHeld = 1u << 31;
  static constexpr std::uint32_t kWriterWait = 1u << 30;
  static constexpr std::uint32_t kUpdateHeld = 1u << 29;
  static constexpr std::uint32_t kParked = 1u << 28;
  static constexpr std::uint32_t kReaderMask = kParked - 1;

  // Park on state_ while any bit in blocked_mask is present. Publishes the
  // parked bit (never while unblocked — that could strand the bit on a free
  // lock) before sleeping; the kernel-side value re-check closes the race
  // against a release that slips between our load and the sleep. Returns
  // without sleeping when the CAS loses or the lock became acquirable.
  void try_park(std::uint32_t blocked_mask,
                std::uint32_t spent_spins) noexcept {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    if ((s & blocked_mask) == 0) return;
    if ((s & kParked) == 0) {
      if (!state_.compare_exchange_weak(s, s | kParked,
                                        std::memory_order_relaxed)) {
        return;
      }
      s |= kParked;
    }
    parking::park(state_, s, spent_spins);
  }

  std::atomic<std::uint32_t> state_{0};
};

}  // namespace ale
