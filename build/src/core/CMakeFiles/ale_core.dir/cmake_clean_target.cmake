file(REMOVE_RECURSE
  "libale_core.a"
)
