// KvService behaviour: routing, sync ops, queueing/shedding, batched
// drains, per-shard telemetry naming, and latency recording.
#include "svc/kv_service.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/cycles.hpp"

namespace ale::svc {
namespace {

SvcConfig small_config() {
  SvcConfig cfg;
  cfg.num_shards = 4;
  cfg.slots_per_shard = 4;
  cfg.buckets_per_slot = 64;
  cfg.batch_max = 4;
  cfg.queue_capacity = 8;
  return cfg;
}

TEST(KvService, SyncOpsRoundTrip) {
  KvService svc(small_config());
  EXPECT_TRUE(svc.set("alpha", "1"));
  EXPECT_FALSE(svc.set("alpha", "2"));  // overwrite, not insert
  std::string out;
  EXPECT_TRUE(svc.get("alpha", out));
  EXPECT_EQ(out, "2");
  EXPECT_TRUE(svc.remove("alpha"));
  EXPECT_FALSE(svc.get("alpha", out));
  EXPECT_FALSE(svc.remove("alpha"));
}

TEST(KvService, RoutingIsStableAndCoversShards) {
  KvService svc(small_config());
  std::set<std::size_t> used;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::size_t s = svc.shard_of(key);
    ASSERT_LT(s, svc.num_shards());
    ASSERT_EQ(s, svc.shard_of(key));  // stable
    used.insert(s);
  }
  EXPECT_EQ(used.size(), svc.num_shards());  // 256 keys hit all 4 shards
}

TEST(KvService, SyncOpsLandOnTheRoutedShard) {
  KvService svc(small_config());
  svc.set("routed-key", "v");
  const std::size_t home = svc.shard_of("routed-key");
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    EXPECT_EQ(svc.db(s).count(), s == home ? 1u : 0u);
  }
}

TEST(KvService, EnqueueDrainServesRequests) {
  KvService svc(small_config());
  Request r;
  r.kind = ReqKind::kSet;
  r.key = "queued";
  r.value = "payload";
  r.arrival_ticks = now_ticks();
  ASSERT_TRUE(svc.enqueue(std::move(r)));
  const std::size_t shard = svc.shard_of("queued");
  EXPECT_EQ(svc.queued(shard), 1u);
  EXPECT_EQ(svc.drain_shard(shard, nullptr, 0), 1u);
  EXPECT_EQ(svc.queued(shard), 0u);
  std::string out;
  EXPECT_TRUE(svc.get("queued", out));
  EXPECT_EQ(out, "payload");
}

TEST(KvService, DrainBatchesWritesThroughApplyBatch) {
  SvcConfig cfg = small_config();
  cfg.num_shards = 1;  // everything on one shard so one drain sees all
  cfg.batch_max = 8;
  KvService svc(cfg);
  for (int i = 0; i < 6; ++i) {
    Request r;
    r.kind = ReqKind::kSet;
    r.key = "k" + std::to_string(i);
    r.value = "v";
    ASSERT_TRUE(svc.enqueue(std::move(r)));
  }
  EXPECT_EQ(svc.drain_shard(0, nullptr, 0), 6u);
  const SvcStats st = svc.stats();
  EXPECT_EQ(st.batches, 1u);    // six writes folded into ONE apply_batch
  EXPECT_EQ(st.batch_ops, 6u);
  EXPECT_EQ(st.sets, 6u);
  EXPECT_EQ(svc.db(0).count(), 6u);
}

TEST(KvService, BatchingOffAppliesIndividually) {
  SvcConfig cfg = small_config();
  cfg.num_shards = 1;
  cfg.batching = false;
  KvService svc(cfg);
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.kind = ReqKind::kSet;
    r.key = "k" + std::to_string(i);
    r.value = "v";
    ASSERT_TRUE(svc.enqueue(std::move(r)));
  }
  EXPECT_EQ(svc.drain_shard(0, nullptr, 0), 4u);
  const SvcStats st = svc.stats();
  EXPECT_EQ(st.batches, 0u);
  EXPECT_EQ(svc.db(0).count(), 4u);
}

TEST(KvService, DrainRespectsBatchMax) {
  SvcConfig cfg = small_config();
  cfg.num_shards = 1;
  cfg.batch_max = 3;
  cfg.queue_capacity = 64;
  KvService svc(cfg);
  for (int i = 0; i < 7; ++i) {
    Request r;
    r.kind = ReqKind::kGet;
    r.key = "k" + std::to_string(i);
    ASSERT_TRUE(svc.enqueue(std::move(r)));
  }
  EXPECT_EQ(svc.drain_shard(0, nullptr, 0), 3u);
  EXPECT_EQ(svc.drain_shard(0, nullptr, 0), 3u);
  EXPECT_EQ(svc.drain_shard(0, nullptr, 0), 1u);
  EXPECT_EQ(svc.drain_shard(0, nullptr, 0), 0u);
}

TEST(KvService, FullQueueSheds) {
  SvcConfig cfg = small_config();
  cfg.num_shards = 1;
  cfg.queue_capacity = 2;
  KvService svc(cfg);
  auto make = [](int i) {
    Request r;
    r.kind = ReqKind::kGet;
    r.key = "k" + std::to_string(i);
    return r;
  };
  EXPECT_TRUE(svc.enqueue(make(0)));
  EXPECT_TRUE(svc.enqueue(make(1)));
  EXPECT_FALSE(svc.enqueue(make(2)));  // capacity 2: shed
  const SvcStats st = svc.stats();
  EXPECT_EQ(st.enqueued, 2u);
  EXPECT_EQ(st.shed, 1u);
}

TEST(KvService, ScanReturnsSlotRecords) {
  SvcConfig cfg = small_config();
  cfg.num_shards = 1;
  cfg.slots_per_shard = 1;  // single slot: scans see every record
  KvService svc(cfg);
  for (int i = 0; i < 10; ++i) {
    svc.set("s" + std::to_string(i), "v" + std::to_string(i));
  }
  std::vector<std::pair<std::string, std::string>> out;
  EXPECT_EQ(svc.scan("s0", 100, out), 10u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(svc.scan("s0", 3, out), 3u);  // limit honoured
  EXPECT_EQ(out.size(), 3u);
}

TEST(KvService, QueuedScanServedOnDrain) {
  SvcConfig cfg = small_config();
  cfg.num_shards = 1;
  KvService svc(cfg);
  svc.set("scan-me", "v");
  Request r;
  r.kind = ReqKind::kScan;
  r.key = "scan-me";
  r.scan_limit = 4;
  ASSERT_TRUE(svc.enqueue(std::move(r)));
  EXPECT_EQ(svc.drain_shard(0, nullptr, 0), 1u);
  EXPECT_EQ(svc.stats().scans, 1u);
}

TEST(KvService, DrainRecordsOpenLoopLatency) {
  SvcConfig cfg = small_config();
  cfg.num_shards = 1;
  KvService svc(cfg);
  LatencyRecorder rec(2);
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.kind = ReqKind::kGet;
    r.key = "k" + std::to_string(i);
    r.arrival_ticks = now_ticks();
    ASSERT_TRUE(svc.enqueue(std::move(r)));
  }
  EXPECT_EQ(svc.drain_shard(0, &rec, 1), 3u);
  EXPECT_EQ(rec.merged().total(), 3u);
}

TEST(KvService, ShardDbsGetPerShardNames) {
  // The per-shard ShardedDb instances must carry distinct telemetry
  // prefixes; the lock metadata name is the observable handle.
  SvcConfig cfg = small_config();
  cfg.name = "svctest";
  KvService svc(cfg);
  std::set<std::string> names;
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    names.insert(svc.db(s).method_lock_md().name());
  }
  EXPECT_EQ(names.size(), svc.num_shards());
  EXPECT_TRUE(names.count("svctest.s0.methodLock") == 1)
      << "got: " << *names.begin();
}

TEST(KvService, StatsAggregateAcrossShards) {
  KvService svc(small_config());
  for (int i = 0; i < 32; ++i) {
    Request r;
    r.kind = i % 2 == 0 ? ReqKind::kSet : ReqKind::kGet;
    r.key = "k" + std::to_string(i);
    r.value = "v";
    svc.enqueue(std::move(r));
  }
  std::size_t drained = 0;
  for (std::size_t s = 0; s < svc.num_shards(); ++s) {
    while (svc.drain_shard(s, nullptr, 0) != 0) {
    }
    drained += 0;
  }
  const SvcStats st = svc.stats();
  EXPECT_EQ(st.drained, st.enqueued);
  EXPECT_EQ(st.gets + st.sets, st.drained);
  (void)drained;
}

}  // namespace
}  // namespace ale::svc
