// Abort taxonomy shared by every HTM backend.
//
// The policies (static and adaptive) key decisions on *why* a transaction
// aborted — most importantly §4's "the library estimates whether a hardware
// transaction has been aborted due to a concurrent lock acquisition by
// another thread [and] accounts for such aborts in a much lighter way" —
// so the taxonomy is part of the backend-independent contract.
#pragma once

#include <cstdint>

namespace ale::htm {

enum class AbortCause : std::uint8_t {
  kNone = 0,
  kConflict,       // data conflict with a concurrent writer
  kCapacity,       // read/write set exceeded the platform's tracking limits
  kLockedByOther,  // the subscribed lock was (or became) held
  kExplicit,       // user-requested abort (self-abort idiom, §3.3)
  kEnvironmental,  // best-effort quirk: interrupt/TLB-miss/faulting analogs
  kNested,         // nested critical section disallowed HTM (§4.1)
  kUnavailable,    // no HTM on this platform/profile
  kOther,
};

inline const char* to_string(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kNone: return "none";
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kLockedByOther: return "locked";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kEnvironmental: return "environmental";
    case AbortCause::kNested: return "nested";
    case AbortCause::kUnavailable: return "unavailable";
    case AbortCause::kOther: return "other";
  }
  return "?";
}

inline constexpr std::size_t kNumAbortCauses = 9;

// Thrown by the emulated backend's instrumented accessors / commit to unwind
// back to the critical-section execution engine. Deliberately allocation-
// free. User critical-section code must be abort-safe (no side effects other
// than tx_store, which is buffered) — the same rule the paper imposes on
// SWOpt paths.
struct TxAbortException {
  AbortCause cause = AbortCause::kOther;
  std::uint8_t user_code = 0;  // for kExplicit, the user's abort code
};

}  // namespace ale::htm
