// Mutual-exclusion and predicate tests for the lock substrates.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sync/lockapi.hpp"
#include "sync/rwlock.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticketlock.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

// ---- generic lock battery, instantiated per lock type ----

template <typename L>
class LockTest : public ::testing::Test {};

using LockTypes = ::testing::Types<TatasLock, TicketLock, TrackedMutex>;
TYPED_TEST_SUITE(LockTest, LockTypes);

TYPED_TEST(LockTest, InitiallyUnlocked) {
  TypeParam lock;
  EXPECT_FALSE(lock.is_locked());
}

TYPED_TEST(LockTest, LockSetsPredicate) {
  TypeParam lock;
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TYPED_TEST(LockTest, TryLockSucceedsWhenFree) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
}

TYPED_TEST(LockTest, TryLockFailsWhenHeld) {
  TypeParam lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TYPED_TEST(LockTest, MutualExclusionCounter) {
  TypeParam lock;
  long counter = 0;
  constexpr int kPerThread = 20000;
  constexpr unsigned kThreads = 4;
  test::run_threads(kThreads, [&](unsigned) {
    for (int i = 0; i < kPerThread; ++i) {
      lock.lock();
      counter++;  // racy unless the lock works
      lock.unlock();
    }
  });
  EXPECT_EQ(counter, static_cast<long>(kPerThread) * kThreads);
}

TYPED_TEST(LockTest, GenericLockApiRoundTrip) {
  TypeParam lock;
  const LockApi* api = lock_api<TypeParam>();
  EXPECT_FALSE(api->is_locked(&lock));
  api->acquire(&lock);
  EXPECT_TRUE(api->is_locked(&lock));
  EXPECT_FALSE(api->try_acquire(&lock));
  api->release(&lock);
  EXPECT_TRUE(api->try_acquire(&lock));
  api->release(&lock);
}

// ---- ticket lock FIFO ----

TEST(TicketLock, GrantsInFifoOrder) {
  TicketLock lock;
  std::vector<int> order;
  std::atomic<int> stage{0};
  lock.lock();
  std::thread t1([&] {
    stage.fetch_add(1);
    lock.lock();
    order.push_back(1);
    lock.unlock();
  });
  while (stage.load() < 1) {
  }
  // t1 is (about to be) queued; give it time to take its ticket.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread t2([&] {
    lock.lock();
    order.push_back(2);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.unlock();
  t1.join();
  t2.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

// ---- readers-writer lock ----

TEST(RwSpinLock, ReadersShareWritersExclude) {
  RwSpinLock rw;
  rw.lock_shared();
  EXPECT_TRUE(rw.try_lock_shared());
  EXPECT_FALSE(rw.try_lock());
  EXPECT_EQ(rw.reader_count(), 2u);
  rw.unlock_shared();
  rw.unlock_shared();
  EXPECT_TRUE(rw.try_lock());
  EXPECT_FALSE(rw.try_lock_shared());
  EXPECT_FALSE(rw.try_lock());
  rw.unlock();
}

TEST(RwSpinLock, PredicatesDistinguishReadersFromWriter) {
  RwSpinLock rw;
  EXPECT_FALSE(rw.is_locked());
  EXPECT_FALSE(rw.is_write_locked());
  rw.lock_shared();
  EXPECT_TRUE(rw.is_locked());        // readers conflict with elided writers
  EXPECT_FALSE(rw.is_write_locked());  // but not with elided readers
  rw.unlock_shared();
  rw.lock();
  EXPECT_TRUE(rw.is_locked());
  EXPECT_TRUE(rw.is_write_locked());
  rw.unlock();
}

TEST(RwSpinLock, WriterCounterIntegrity) {
  RwSpinLock rw;
  long counter = 0;
  std::atomic<long> reads_ok{0};
  test::run_threads(4, [&](unsigned idx) {
    for (int i = 0; i < 5000; ++i) {
      if (idx % 2 == 0) {
        rw.lock();
        counter++;
        rw.unlock();
      } else {
        rw.lock_shared_trylockspin();
        if (counter >= 0) reads_ok.fetch_add(1, std::memory_order_relaxed);
        rw.unlock_shared();
      }
    }
  });
  EXPECT_EQ(counter, 2 * 5000);
  EXPECT_EQ(reads_ok.load(), 2 * 5000);
}

TEST(RwSpinLock, TrylockspinAcquires) {
  RwSpinLock rw;
  rw.lock_trylockspin();
  EXPECT_TRUE(rw.is_write_locked());
  rw.unlock();
  rw.lock_shared_trylockspin();
  EXPECT_EQ(rw.reader_count(), 1u);
  rw.unlock_shared();
}

TEST(RwLockApi, ReadAndWriteViewsDiffer) {
  RwSpinLock rw;
  const LockApi* w = rw_write_api();
  const LockApi* r = rw_read_api();
  r->acquire(&rw);
  EXPECT_TRUE(w->is_locked(&rw));   // write view sees the reader
  EXPECT_FALSE(r->is_locked(&rw));  // read view does not
  r->release(&rw);
  w->acquire(&rw);
  EXPECT_TRUE(w->is_locked(&rw));
  EXPECT_TRUE(r->is_locked(&rw));
  w->release(&rw);
  EXPECT_STREQ(rw_read_trylockspin_api()->name, "rw-read-trylockspin");
}

}  // namespace
}  // namespace ale
