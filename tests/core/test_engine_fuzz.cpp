// Randomized engine fuzz: arbitrary nesting shapes, random abort/exception
// behaviour, random policy switching — the engine must never leak a lock,
// corrupt the thread context, or lose an update.
#include <gtest/gtest.h>

#include "core/ale.hpp"
#include "policy/install.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct EngineFuzz : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
  void TearDown() override { set_global_policy(nullptr); }
};

struct FuzzWorld {
  static constexpr unsigned kLocks = 3;
  TatasLock locks[kLocks];
  LockMd mds[kLocks] = {LockMd("fuzz.0"), LockMd("fuzz.1"), LockMd("fuzz.2")};
  alignas(64) std::uint64_t cells[kLocks] = {};
};

// One random critical section on lock `L`, possibly nesting another.
void random_cs(FuzzWorld& w, Xoshiro256& rng, unsigned lock_idx,
               unsigned depth) {
  static ScopeInfo scopes[3] = {ScopeInfo("fuzz.csA", true),
                                ScopeInfo("fuzz.csB"),
                                ScopeInfo("fuzz.csC", true, false)};
  ScopeInfo& scope = scopes[rng.next_below(3)];
  const bool nest = depth < 2 && rng.next_bool(0.3);
  // Respect a global lock order (inner index >= outer index): Lock-mode
  // fallbacks acquire blockingly, so — exactly as with plain locks — an
  // unordered nest can ABBA-deadlock. ALE does not change that contract
  // (elided modes use try-acquisition and would dodge it, which only makes
  // the deadlock rarer, not acceptable).
  const unsigned inner_idx =
      lock_idx + static_cast<unsigned>(
                     rng.next_below(FuzzWorld::kLocks - lock_idx));
  const bool self_abort_roll = rng.next_bool(0.2);
  const bool user_throw = depth == 0 && rng.next_bool(0.02);

  execute_cs(lock_api<TatasLock>(), &w.locks[lock_idx], w.mds[lock_idx],
             scope, [&](CsExec& cs) -> CsBody {
               if (cs.in_swopt()) {
                 (void)tx_load(w.cells[lock_idx]);
                 if (self_abort_roll) cs.swopt_self_abort();
                 return CsBody::kRetrySwOpt;  // always bounce out of SWOpt
               }
               tx_store(w.cells[lock_idx], tx_load(w.cells[lock_idx]) + 1);
               if (nest) {
                 random_cs(w, rng, inner_idx, depth + 1);
               }
               if (user_throw) throw std::runtime_error("fuzz");
               return CsBody::kDone;
             });
}

TEST_F(EngineFuzz, SingleThreadRandomNestingNeverWedges) {
  for (const char* spec :
       {"lockonly", "static-all-3:2", "static-hl-2", "adaptive"}) {
    set_global_policy(make_policy(spec));
    FuzzWorld w;
    Xoshiro256 rng(1234);
    int user_exceptions = 0;
    for (int i = 0; i < 3000; ++i) {
      try {
        random_cs(w, rng, static_cast<unsigned>(rng.next_below(3)), 0);
      } catch (const std::runtime_error&) {
        ++user_exceptions;
      }
    }
    for (unsigned l = 0; l < FuzzWorld::kLocks; ++l) {
      EXPECT_FALSE(w.locks[l].is_locked()) << spec << " lock " << l;
    }
    EXPECT_TRUE(thread_ctx().frames.empty()) << spec;
    EXPECT_EQ(thread_ctx().swopt_lock, nullptr) << spec;
    EXPECT_EQ(thread_ctx().context(), &context_root()) << spec;
    (void)user_exceptions;
  }
}

TEST_F(EngineFuzz, ConcurrentRandomNestingKeepsLocksHealthy) {
  set_global_policy(make_policy("static-all-3:2"));
  FuzzWorld w;
  test::run_threads(4, [&](unsigned idx) {
    Xoshiro256 rng(idx * 99 + 1);
    for (int i = 0; i < 2000; ++i) {
      try {
        random_cs(w, rng, static_cast<unsigned>(rng.next_below(3)), 0);
      } catch (const std::runtime_error&) {
      }
    }
  });
  for (unsigned l = 0; l < FuzzWorld::kLocks; ++l) {
    EXPECT_FALSE(w.locks[l].is_locked());
    // Locks still usable after the storm.
    w.locks[l].lock();
    w.locks[l].unlock();
  }
}

TEST_F(EngineFuzz, OuterCountsExactWhenNoUserExceptions) {
  // Each top-level call commits exactly once (counted after the CS returns
  // — a counter inside the body would double-count across HTM retries),
  // and every committed body incremented some cell, so the cell total must
  // be at least the number of top-level operations.
  set_global_policy(make_policy("static-all-3:2"));
  FuzzWorld w;
  Xoshiro256 rng(777);
  std::uint64_t committed = 0;
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    try {
      random_cs(w, rng, static_cast<unsigned>(rng.next_below(3)), 0);
      ++committed;
    } catch (const std::runtime_error&) {
    }
  }
  EXPECT_GT(committed, 0u);
  std::uint64_t total = 0;
  for (const auto& c : w.cells) total += c;
  EXPECT_GE(total, committed);  // nested CSes add extra increments
}

}  // namespace
}  // namespace ale
