// ALE — Adaptive Lock Elision: the public API.
//
// Reproduction of "Adaptive Integration of Hardware and Software Lock
// Elision Techniques" (Dice, Kogan, Lev, Merrifield, Moir — SPAA 2014).
//
// Quickstart (front-door API):
//
//   ale::ElidableLock<> lock("myLock");
//
//   lock.elide([&](ale::CsExec& cs) {
//     ale::tx_store(counter, ale::tx_load(counter) + 1);
//   });
//
// All shared data touched inside the critical section goes through
// ale::tx_load / ale::tx_store (see htm/access.hpp for why). Choose the
// execution policy with ale::set_global_policy (policies live in policy/).
// The raw-parts execute_cs(api, lock, md, scope, body) overload remains in
// core/execute_cs.hpp for exotic setups; the macro API from the paper
// (ALE_BEGIN_CS et al.) is in core/macros.hpp. See docs/api.md for the
// full reference.
#pragma once

#include "core/conflict.hpp"
#include "core/context.hpp"
#include "core/elidable_lock.hpp"
#include "core/elidable_shared_lock.hpp"
#include "core/engine.hpp"
#include "core/execute_cs.hpp"
#include "core/granule.hpp"
#include "core/introspect.hpp"
#include "core/lockmd.hpp"
#include "core/macros.hpp"
#include "core/mode.hpp"
#include "core/policy_iface.hpp"
#include "core/report.hpp"
#include "core/scoped_cs.hpp"
#include "core/thread_ctx.hpp"
#include "htm/access.hpp"
#include "htm/config.hpp"
#include "sync/lockapi.hpp"
