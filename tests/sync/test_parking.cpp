// The futex parking tier (sync/parking.hpp): lost-wakeup freedom under an
// aggressive park budget, parked-bit vs. unlock ordering, the surplus gate
// on Backoff::should_park, SNZI park_until_zero, and the Sp::kPark schedule
// point under the ale::check explorer.
//
// The hammers double as the TSan workload: run ale_tests_sync under
// -fsanitize=thread and the publish-bit / release-store / futex-wake
// orderings are exactly what the race detector audits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/explore.hpp"
#include "sync/backoff.hpp"
#include "sync/parking.hpp"
#include "sync/rwlock.hpp"
#include "sync/snzi.hpp"
#include "sync/spinlock.hpp"
#include "sync/ticketlock.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

// Every test runs with a budget of one pause round: waiters park at the
// first opportunity, so the parking protocol — not the spin tier — carries
// the load. Config restored on teardown (set_park_config is quiescent-only;
// gtest runs tests serially).
class ParkingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = park_config();
    ParkConfig aggressive;
    aggressive.min_spin = 1;
    aggressive.max_spin = 1;
    aggressive.surplus_gate = 0;
    set_park_config(aggressive);
    parking::reset_park_counters();
  }
  void TearDown() override { set_park_config(saved_); }

 private:
  ParkConfig saved_;
};

// ---- lost-wakeup hammers ----
//
// With a one-round budget every contended acquisition parks. The property
// under test is liveness: a single lost wakeup deadlocks the run (ctest
// would time out), and the count checks mutual exclusion survived the
// park/wake churn.

// The main thread holds the lock across worker startup: every worker's
// first acquisition contends, exhausts its one-round budget, and parks.
// On a single-core host the free-running version of this hammer can
// serialize into uncontended quanta and never park at all; pinning the
// first acquisition makes the park path load-bearing deterministically.

TEST_F(ParkingTest, TatasLockHammerLosesNoWakeups) {
  TatasLock lock;
  long counter = 0;
  constexpr int kPerThread = 20000;
  constexpr unsigned kThreads = 4;
  lock.lock();
  const std::uint64_t parks_before = parking::park_count();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        lock.lock();
        counter++;
        lock.unlock();
      }
    });
  }
  while (parking::park_count() == parks_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  lock.unlock();  // wakes a parked waiter; the hammer takes it from here
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(kPerThread) * kThreads);
  EXPECT_GT(parking::park_count(), parks_before);
}

TEST_F(ParkingTest, TicketLockHammerLosesNoWakeups) {
  TicketLock lock;
  long counter = 0;
  constexpr int kPerThread = 20000;
  constexpr unsigned kThreads = 4;
  lock.lock();
  const std::uint64_t parks_before = parking::park_count();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        lock.lock();
        counter++;
        lock.unlock();
      }
    });
  }
  while (parking::park_count() == parks_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  lock.unlock();
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(kPerThread) * kThreads);
  EXPECT_GT(parking::park_count(), parks_before);
}

TEST_F(ParkingTest, RwLockHammerAllModesLoseNoWakeups) {
  RwSpinLock rw;
  long counter = 0;
  std::atomic<long> reads_ok{0};
  constexpr int kPerThread = 5000;
  test::run_threads(4, [&](unsigned idx) {
    for (int i = 0; i < kPerThread; ++i) {
      switch (idx % 3) {
        case 0:
          rw.lock();
          counter++;
          rw.unlock();
          break;
        case 1:
          rw.lock_shared();
          if (counter >= 0) reads_ok.fetch_add(1, std::memory_order_relaxed);
          rw.unlock_shared();
          break;
        default:
          rw.lock_update();
          if (counter >= 0) reads_ok.fetch_add(1, std::memory_order_relaxed);
          rw.unlock_update();
          break;
      }
    }
  });
  EXPECT_EQ(counter, 2L * kPerThread);  // idx 0 and 3 write
  EXPECT_EQ(reads_ok.load(), 2L * kPerThread);
}

// ---- parked-bit vs. unlock ordering ----
//
// One waiter, guaranteed parked (poll the park counter), then one unlock.
// The unlock must observe the parked bit the waiter published and wake it:
// if the bit-publish / release-exchange ordering were wrong, the waiter
// sleeps forever and the join hangs. This is the minimal deterministic form
// of the race the hammers throw threads at.

TEST_F(ParkingTest, UnlockObservesParkedBitAndWakes) {
  TatasLock lock;
  lock.lock();
  const std::uint64_t parks_before = parking::park_count();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    lock.lock();  // parks after one pause round
    acquired.store(true, std::memory_order_release);
    lock.unlock();
  });
  // Wait until the waiter has actually parked at least once (spurious
  // returns re-park: the counter still moves).
  while (parking::park_count() == parks_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  lock.unlock();  // must see the parked bit and wake
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST_F(ParkingTest, EngineStyleParkUntilFreeIsWoken) {
  // The engine's pre-HTM wait parks without ever acquiring. A spurious
  // return is allowed; being asleep across the unlock is not.
  TatasLock lock;
  lock.lock();
  const std::uint64_t parks_before = parking::park_count();
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    while (lock.is_locked()) lock.park_until_free(1);
    EXPECT_TRUE(released.load(std::memory_order_acquire));
  });
  while (parking::park_count() == parks_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  released.store(true, std::memory_order_release);
  lock.unlock();
  waiter.join();
}

// ---- SNZI park_until_zero (the SWOpt-retry wait) ----

TEST_F(ParkingTest, TimedParkReportsTimeoutOnWedgedSnzi) {
  // The grouping wait's liveness depends on this: a group that never
  // drains must produce `false` (timeout) rather than sleeping forever.
  Snzi s;
  s.arrive();  // wedged: never departs
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(s.park_until_zero_for(1'000'000));  // 1 ms
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(1));
  s.depart();
}

TEST_F(ParkingTest, SnziParkUntilZeroWokenByLastDepart) {
  Snzi s;
  s.arrive();
  const std::uint64_t parks_before = parking::park_count();
  std::thread waiter([&] {
    while (s.query()) s.park_until_zero(1);
  });
  while (parking::park_count() == parks_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  s.depart();  // root 1 → 0 must bump the epoch and wake
  waiter.join();
  EXPECT_FALSE(s.query());
}

// ---- the surplus gate and budget accounting on Backoff ----

TEST_F(ParkingTest, SurplusGateBlocksParkingUntilEnoughWaiters) {
  ParkConfig cfg;
  cfg.min_spin = 1;
  cfg.max_spin = 1;
  cfg.surplus_gate = 2;
  set_park_config(cfg);

  Backoff b;
  b.set_park_budget(1);
  b.pause();  // spent ≥ 1: the budget side of should_park is satisfied
  EXPECT_FALSE(b.should_park());  // 0 observed waiters < gate
  b.set_waiters(1);
  EXPECT_FALSE(b.should_park());
  b.set_waiters(2);
  EXPECT_TRUE(b.should_park());
  b.note_wake();  // freshly runnable: must earn the next park again
  EXPECT_FALSE(b.should_park());
}

TEST_F(ParkingTest, KillSwitchDisablesParking) {
  Backoff b;
  b.set_park_budget(1);
  b.pause();
  ASSERT_TRUE(b.should_park());
  set_park_enabled(false);
  EXPECT_FALSE(b.should_park());
  set_park_enabled(true);
  EXPECT_TRUE(b.should_park());
}

TEST_F(ParkingTest, LearnedBudgetIsClampedToConfigRange) {
  ParkConfig cfg;
  cfg.min_spin = 8;
  cfg.max_spin = 64;
  set_park_config(cfg);
  Backoff b;
  b.set_park_budget(1u << 20);  // learned value far above max_spin
  b.pause();                    // one round: spent ≈ a few spins
  std::uint64_t spent = b.spent();
  while (spent < 64) {  // clamp means 64 spins suffice, not 2^20
    b.pause();
    spent = b.spent();
  }
  EXPECT_TRUE(b.should_park());
}

// ---- the Sp::kPark schedule point under the ale::check explorer ----
//
// Under serialized schedules park() never reaches the kernel: it charges
// virtual time and yields at Sp::kPark. The scenario must stay live and
// mutually exclusive across every explored interleaving — a park that
// failed to yield would deadlock the serialized schedule immediately.

TEST_F(ParkingTest, CheckExplorerDrivesParkSchedulePoint) {
  check::ExploreOptions opts;
  opts.name = "parking/tatas-counter";
  opts.schedules = 20;
  opts.seed = 29;
  const check::ExploreResult r =
      check::explore(opts, [](check::ScheduleCtx& ctx) {
        auto lock = std::make_unique<TatasLock>();
        auto count = std::make_unique<int>(0);
        std::vector<std::function<void()>> bodies;
        for (int t = 0; t < 3; ++t) {
          bodies.push_back([&lock, &count] {
            for (int i = 0; i < 20; ++i) {
              lock->lock();
              ++*count;
              lock->unlock();
            }
          });
        }
        ctx.run_threads(std::move(bodies));
        if (*count != 3 * 20) {
          return std::optional<std::string>("lost increment: " +
                                            std::to_string(*count));
        }
        return std::optional<std::string>();
      });
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : r.violations.front().detail);
  EXPECT_EQ(r.schedules_run, 20u);
}

}  // namespace
}  // namespace ale
