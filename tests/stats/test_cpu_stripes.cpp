// Per-CPU stripe selection (stats/striped_counter.hpp) — the converged
// engine path's commit target. current_stat_stripe() maps the running CPU
// onto a counter stripe (getcpu, cached and periodically refreshed);
// set_stat_cpu_stripes(false) — or an unsupported platform — falls back to
// the per-thread my_stat_stripe() assignment. Correctness never depends on
// *which* stripe receives a delta (fold() sums them all), so these tests
// pin down the invariants that do matter: the index stays in range under
// both modes, the fallback really is the thread stripe, and concurrent
// mixed-mode commits through apply_stat_deltas stay exact. The hammers
// double as the TSan exercise for the stripe-selection path.
#include <gtest/gtest.h>

#include <atomic>

#include "core/context.hpp"
#include "core/lockmd.hpp"
#include "core/stat_delta.hpp"
#include "stats/striped_counter.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

// Restore the process-global mode around each test.
struct CpuStripesTest : ::testing::Test {
  void SetUp() override { was_ = stat_cpu_stripes_enabled(); }
  void TearDown() override { set_stat_cpu_stripes(was_); }
  bool was_ = false;
};

TEST_F(CpuStripesTest, CurrentStripeInRangeBothModes) {
  set_stat_cpu_stripes(true);
  for (int i = 0; i < 200; ++i) {  // spans at least one refresh period
    EXPECT_LT(current_stat_stripe(), stat_stripe_count());
  }
  set_stat_cpu_stripes(false);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(current_stat_stripe(), stat_stripe_count());
  }
}

TEST_F(CpuStripesTest, DisabledModeFallsBackToThreadStripe) {
  set_stat_cpu_stripes(false);
  EXPECT_FALSE(stat_cpu_stripes_enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(current_stat_stripe(), my_stat_stripe());
  }
}

TEST_F(CpuStripesTest, ToggleRoundTrips) {
  set_stat_cpu_stripes(true);
#if defined(__linux__)
  EXPECT_TRUE(stat_cpu_stripes_enabled());
#else
  // Platforms without getcpu refuse to enable: the fallback is permanent.
  EXPECT_FALSE(stat_cpu_stripes_enabled());
#endif
  set_stat_cpu_stripes(false);
  EXPECT_FALSE(stat_cpu_stripes_enabled());
}

// Concurrent commits through apply_stat_deltas with per-CPU selection:
// threads migrate (or not) however the scheduler likes, stripes collide
// freely, and the folded totals must still be exact below the BFP
// threshold. Mirrors the converged engine's commit_stat_deltas exactly.
TEST_F(CpuStripesTest, ConcurrentCommitsFoldExactly) {
  set_stat_cpu_stripes(true);
  LockMd md("cpu_stripes.hammer");
  static ScopeInfo scope("cpu_stripes.scope");
  GranuleMd& g = md.granule_for(context_root().child(&scope));

  constexpr unsigned kThreads = 8;
  constexpr std::uint32_t kPer = 63;  // 8·63 = 504 < 512: exact regime
  test::run_threads(kThreads, [&](unsigned) {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      StatDeltaCounts d;
      d.executions = 1;
      d.attempt(ExecMode::kHtm) = 1;
      d.success(ExecMode::kHtm) = 1;
      apply_stat_deltas(g, d, current_stat_stripe());
    }
  });

  const GranuleTotals t = g.stats.fold();
  EXPECT_EQ(t.executions, kThreads * kPer);
  EXPECT_EQ(t.of(ExecMode::kHtm).attempts, kThreads * kPer);
  EXPECT_EQ(t.of(ExecMode::kHtm).successes, kThreads * kPer);
}

// The same hammer racing the mode toggle: stripe selection may switch
// between CPU-keyed and thread-keyed mid-stream, which must never lose or
// duplicate a delta (only the landing stripe changes).
TEST_F(CpuStripesTest, ToggleRaceLosesNothing) {
  LockMd md("cpu_stripes.toggle");
  static ScopeInfo scope("cpu_stripes.toggle_scope");
  GranuleMd& g = md.granule_for(context_root().child(&scope));

  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPer = 100;  // 400 < 512: exact regime
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool on = false;
    while (!stop.load(std::memory_order_relaxed)) {
      set_stat_cpu_stripes(on = !on);
    }
  });
  test::run_threads(kThreads, [&](unsigned) {
    for (std::uint32_t i = 0; i < kPer; ++i) {
      StatDeltaCounts d;
      d.executions = 1;
      apply_stat_deltas(g, d, current_stat_stripe());
    }
  });
  stop.store(true);
  toggler.join();
  EXPECT_EQ(g.stats.fold().executions, kThreads * kPer);
}

}  // namespace
}  // namespace ale
