#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace ale {

std::optional<std::string> env_string(std::string_view name) {
  const std::string key(name);
  const char* v = std::getenv(key.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(std::string_view name, std::int64_t def) {
  auto v = env_string(name);
  if (!v) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || (end != nullptr && *end != '\0')) return def;
  return static_cast<std::int64_t>(parsed);
}

double env_double(std::string_view name, double def) {
  auto v = env_string(name);
  if (!v) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || (end != nullptr && *end != '\0')) return def;
  return parsed;
}

bool env_bool(std::string_view name, bool def) {
  auto v = env_string(name);
  if (!v) return def;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return def;
}

}  // namespace ale
