
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/config.cpp" "src/htm/CMakeFiles/ale_htm.dir/config.cpp.o" "gcc" "src/htm/CMakeFiles/ale_htm.dir/config.cpp.o.d"
  "/root/repo/src/htm/emulated.cpp" "src/htm/CMakeFiles/ale_htm.dir/emulated.cpp.o" "gcc" "src/htm/CMakeFiles/ale_htm.dir/emulated.cpp.o.d"
  "/root/repo/src/htm/htm.cpp" "src/htm/CMakeFiles/ale_htm.dir/htm.cpp.o" "gcc" "src/htm/CMakeFiles/ale_htm.dir/htm.cpp.o.d"
  "/root/repo/src/htm/rtm.cpp" "src/htm/CMakeFiles/ale_htm.dir/rtm.cpp.o" "gcc" "src/htm/CMakeFiles/ale_htm.dir/rtm.cpp.o.d"
  "/root/repo/src/htm/version_table.cpp" "src/htm/CMakeFiles/ale_htm.dir/version_table.cpp.o" "gcc" "src/htm/CMakeFiles/ale_htm.dir/version_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ale_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/ale_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
