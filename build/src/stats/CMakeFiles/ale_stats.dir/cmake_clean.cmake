file(REMOVE_RECURSE
  "CMakeFiles/ale_stats.dir/stats.cpp.o"
  "CMakeFiles/ale_stats.dir/stats.cpp.o.d"
  "libale_stats.a"
  "libale_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ale_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
