#include "common/cycles.hpp"

#include <chrono>
#include <mutex>

namespace ale {

namespace detail {
std::atomic<bool> g_virtual_time{false};
thread_local std::uint64_t t_virtual_ticks = 0;
}  // namespace detail

void set_virtual_time_enabled(bool on) noexcept {
  detail::g_virtual_time.store(on, std::memory_order_relaxed);
}

namespace {

double calibrate() {
#if defined(__x86_64__)
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = raw_ticks();
  // Busy-wait ~2ms: long enough for a stable ratio, short enough to be
  // invisible at startup.
  while (clock::now() - t0 < std::chrono::milliseconds(2)) {
  }
  const std::uint64_t c1 = raw_ticks();
  const auto t1 = clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  const double ratio = static_cast<double>(c1 - c0) / ns;
  return ratio > 0 ? ratio : 1.0;
#else
  return 1.0;  // raw_ticks() already returns nanoseconds.
#endif
}

}  // namespace

double ticks_per_ns() noexcept {
  static const double ratio = calibrate();
  return ratio;
}

}  // namespace ale
