# Empty dependencies file for ale_tests_policy.
# This may be replaced when dependencies are built.
