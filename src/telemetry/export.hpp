// JSON and CSV exporters for telemetry snapshots.
//
// Both formats are deterministic renderings of a Snapshot (fixed key order,
// fixed column order, fixed float precision) so they can be golden-tested
// and diffed across runs. The JSON document carries the full snapshot —
// per-granule metrics *and* the resolved event trace; the CSV carries one
// granule-metrics row per line (the same column set as
// ale::print_report_csv, sourced from a snapshot instead of live atomics),
// with a separate writer for events.
#pragma once

#include <ostream>
#include <string>

#include "telemetry/snapshot.hpp"

namespace ale::telemetry {

/// Write the snapshot as a single JSON document. Layout:
/// {"version":1, "policy":..., "locks":[{"name":..., "policy":...,
///  "phase":..., "granules":[{"context":..., "executions":...,
///  "modes":{"Lock":{...},"HTM":{...},"SWOpt":{...}},
///  "abort_causes":{...}, ...}]}], "events":[...], "events_dropped":N}
void write_json(std::ostream& os, const Snapshot& snap);

/// Write one CSV row per granule (header row first): lock, context,
/// executions, per-mode attempts/successes/exec_mean_ns, swopt_failures,
/// lock_wait_mean_ns, one column per abort cause.
void write_csv(std::ostream& os, const Snapshot& snap);

/// Write one CSV row per trace event (header row first).
void write_events_csv(std::ostream& os, const Snapshot& snap);

/// Convenience wrappers for tests and tools.
std::string to_json(const Snapshot& snap);
std::string to_csv(const Snapshot& snap);

/// Escape a string for embedding in a JSON document (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace ale::telemetry
