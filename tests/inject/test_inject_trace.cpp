// Injection ↔ telemetry causality: every fired injection lands in the
// decision-trace ring as kInjectFired (never sampled away), carrying the
// point id, the fire ordinal, and the abort cause it delivers.
#include <gtest/gtest.h>

#include <vector>

#include "core/ale.hpp"
#include "htm/abort.hpp"
#include "inject/inject.hpp"
#include "policy/install.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct InjectTraceTest : ::testing::Test {
  void SetUp() override {
    inject::reset();
    telemetry::reset_trace();
    telemetry::set_trace_enabled(true);
    telemetry::set_trace_sample_rate(1.0);
  }
  void TearDown() override {
    telemetry::set_trace_enabled(false);
    telemetry::reset_trace();
    inject::reset();
    set_global_policy(nullptr);
  }

  static std::vector<telemetry::TraceEvent> inject_events() {
    std::vector<telemetry::TraceEvent> out;
    for (const auto& e : telemetry::drain_trace()) {
      if (e.kind == telemetry::EventKind::kInjectFired) out.push_back(e);
    }
    return out;
  }
};

TEST_F(InjectTraceTest, FiringsAreRecordedWithPointAndOrdinal) {
  ASSERT_TRUE(inject::configure("htm.begin:every=2"));
  for (int i = 0; i < 10; ++i) (void)inject::should_fire(inject::Point::kHtmBegin);

  const auto events = inject_events();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(static_cast<inject::Point>(events[k].aux8),
              inject::Point::kHtmBegin);
    EXPECT_EQ(events[k].aux32, k + 1);  // process-wide fire ordinal
    EXPECT_EQ(static_cast<htm::AbortCause>(events[k].cause),
              htm::AbortCause::kEnvironmental);
  }
}

TEST_F(InjectTraceTest, CauseMatchesPointSemantics) {
  ASSERT_TRUE(inject::configure("htm.commit;htm.capacity;swopt.invalidate"));
  (void)inject::should_fire(inject::Point::kHtmCommit);
  (void)inject::should_fire(inject::Point::kHtmCapacity);
  (void)inject::should_fire(inject::Point::kSwOptInvalidate);

  const auto events = inject_events();
  ASSERT_EQ(events.size(), 3u);
  auto cause_of = [&](inject::Point p) -> htm::AbortCause {
    for (const auto& e : events) {
      if (static_cast<inject::Point>(e.aux8) == p) {
        return static_cast<htm::AbortCause>(e.cause);
      }
    }
    return htm::AbortCause::kNone;
  };
  EXPECT_EQ(cause_of(inject::Point::kHtmCommit), htm::AbortCause::kConflict);
  EXPECT_EQ(cause_of(inject::Point::kHtmCapacity), htm::AbortCause::kCapacity);
  EXPECT_EQ(cause_of(inject::Point::kSwOptInvalidate),
            htm::AbortCause::kConflict);
}

TEST_F(InjectTraceTest, ResolvedRecordsRenderPointNames) {
  ASSERT_TRUE(inject::configure("lock.hold:x=1"));
  test::use_emulated_ideal();
  test::PolicyInstaller inst(make_policy("lockonly"));
  TatasLock lock;
  LockMd md("inject.trace.render");
  static ScopeInfo scope("cs");
  std::uint64_t cell = 0;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope,
             [&](CsExec&) { tx_store(cell, tx_load(cell) + 1); });

  bool saw = false;
  for (const auto& r : telemetry::resolve_events(telemetry::drain_trace())) {
    if (r.kind == "inject_fired") {
      saw = true;
      EXPECT_NE(r.detail.find("point=lock.hold"), std::string::npos)
          << r.detail;
      EXPECT_NE(r.detail.find("fire="), std::string::npos) << r.detail;
    }
  }
  EXPECT_TRUE(saw);
}

TEST_F(InjectTraceTest, EngineAbortFollowsInjectedBeginFault) {
  // Causality through the engine: an injected begin-abort must surface as
  // an HtmAbort event after the kInjectFired record in the same thread.
  ASSERT_TRUE(inject::configure("htm.begin:count=1"));
  test::use_emulated_ideal();
  test::PolicyInstaller inst(make_policy("static-hl-3"));
  TatasLock lock;
  LockMd md("inject.trace.causal");
  static ScopeInfo scope("cs");
  std::uint64_t cell = 0;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope,
             [&](CsExec&) { tx_store(cell, tx_load(cell) + 1); });
  EXPECT_EQ(cell, 1u);

  const auto raw = telemetry::drain_trace();
  int inject_at = -1, abort_at = -1;
  for (int i = 0; i < static_cast<int>(raw.size()); ++i) {
    if (raw[i].kind == telemetry::EventKind::kInjectFired && inject_at < 0) {
      inject_at = i;
    }
    if (raw[i].kind == telemetry::EventKind::kHtmAbort && abort_at < 0) {
      abort_at = i;
      EXPECT_EQ(static_cast<htm::AbortCause>(raw[i].cause),
                htm::AbortCause::kEnvironmental);
    }
  }
  ASSERT_GE(inject_at, 0);
  ASSERT_GE(abort_at, 0);
  EXPECT_LT(inject_at, abort_at);
}

}  // namespace
}  // namespace ale
