// The three execution modes a critical section can run in (§1):
//   HTM   — transactional lock elision: hardware (or emulated) transaction
//           subscribed to the lock,
//   SWOpt — programmer-supplied software-optimistic path, validated against
//           a conflict indicator,
//   Lock  — acquire the lock (always succeeds; the fallback).
#pragma once

#include <cstdint>

namespace ale {

enum class ExecMode : std::uint8_t {
  kLock = 0,
  kHtm = 1,
  kSwOpt = 2,
};

inline constexpr std::size_t kNumExecModes = 3;

inline const char* to_string(ExecMode m) noexcept {
  switch (m) {
    case ExecMode::kLock: return "Lock";
    case ExecMode::kHtm: return "HTM";
    case ExecMode::kSwOpt: return "SWOpt";
  }
  return "?";
}

}  // namespace ale
