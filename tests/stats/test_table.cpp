#include <gtest/gtest.h>

#include <sstream>

#include "stats/table.hpp"

namespace ale {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("only-one"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt_pct(0.5), "50.0%");
}

}  // namespace
}  // namespace ale
