#include <gtest/gtest.h>

#include "sync/backoff.hpp"

namespace ale {
namespace {

TEST(Backoff, StartsAtMinimum) {
  Backoff b;
  EXPECT_EQ(b.current_limit(), Backoff::kMinSpins);
}

TEST(Backoff, DoublesUpToCap) {
  Backoff b;
  for (int i = 0; i < 20; ++i) b.pause();
  EXPECT_EQ(b.current_limit(), Backoff::kMaxSpins);
}

TEST(Backoff, ResetRestoresMinimum) {
  Backoff b;
  b.pause();
  b.pause();
  EXPECT_GT(b.current_limit(), Backoff::kMinSpins);
  b.reset();
  EXPECT_EQ(b.current_limit(), Backoff::kMinSpins);
}

TEST(Backoff, CustomCapRespected) {
  Backoff b(64);
  for (int i = 0; i < 20; ++i) b.pause();
  EXPECT_EQ(b.current_limit(), 64u);
}

// Waiter-aware window scaling (ALE_BACKOFF unset → defaults: waiter_scale=1,
// waiter_cap=64, ceiling=65536).

TEST(Backoff, WindowEqualsLimitWithoutWaiters) {
  Backoff b;
  EXPECT_EQ(b.current_window(), b.current_limit());
  b.pause();
  EXPECT_EQ(b.current_window(), b.current_limit());
}

TEST(Backoff, WaitersScaleWindow) {
  Backoff b;
  b.set_waiters(3);
  // window = limit · (1 + waiters·scale) with the default scale of 1.
  EXPECT_EQ(b.current_window(),
            static_cast<std::uint64_t>(b.current_limit()) * 4);
  b.set_waiters(0);
  EXPECT_EQ(b.current_window(), b.current_limit());
}

TEST(Backoff, WaiterEstimateClampedToCap) {
  Backoff b;
  b.set_waiters(1000000);
  EXPECT_EQ(b.waiters(), backoff_config().waiter_cap);
}

TEST(Backoff, WindowCappedByCeiling) {
  Backoff b;
  for (int i = 0; i < 20; ++i) b.pause();  // limit at kMaxSpins
  b.set_waiters(64);
  EXPECT_EQ(b.current_window(),
            static_cast<std::uint64_t>(backoff_config().ceiling));
}

TEST(Backoff, WaitersDoNotAffectLimitWalk) {
  // Scaling changes the spin *window*, not the exponential limit walk.
  Backoff b;
  b.set_waiters(8);
  for (int i = 0; i < 20; ++i) b.pause();
  EXPECT_EQ(b.current_limit(), Backoff::kMaxSpins);
}

}  // namespace
}  // namespace ale
