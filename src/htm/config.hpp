// Global HTM configuration: which backend executes transactions, and (for
// the emulated backend) which platform profile shapes its behaviour.
//
// Mirrors the paper's "enabling HTM mode is as simple as using appropriate
// compilation flags": here it is the ALE_HTM_BACKEND / ALE_HTM_PROFILE
// environment variables, or an explicit configure() call before spawning
// threads.
#pragma once

#include "htm/profile.hpp"

namespace ale::htm {

enum class BackendKind : std::uint8_t {
  kNone,      // HTM reported unavailable (T2+-like)
  kEmulated,  // software-emulated best-effort HTM (default substrate)
  kRtm,       // real Intel RTM (requires hardware + -mrtm build)
};

const char* to_string(BackendKind k) noexcept;

struct Config {
  BackendKind backend = BackendKind::kEmulated;
  PlatformProfile profile = ideal_profile();
};

// Process-wide configuration. NOT thread-safe: call before any ALE-enabled
// critical section runs (typically at startup). Selecting kRtm on a machine
// without RTM falls back to kEmulated with a warning on stderr.
void configure(const Config& config);

// Convenience: backend from ALE_HTM_BACKEND (none|emulated|rtm|auto) and
// profile from ALE_HTM_PROFILE (ideal|rock|haswell|t2). "auto" picks RTM if
// the hardware has it, else emulated. Called implicitly on first use.
void configure_from_env();

const Config& config() noexcept;

// Guard-free mirrors of config().backend and htm_available(), for the
// per-transaction dispatch sites (tx_begin/commit/subscribe/in_txn and the
// engine's eligibility check). One relaxed atomic load each: the mirrors
// are refreshed by the same code that mutates the config, and config
// mutation is documented as a before-threads startup action, so a relaxed
// read can never observe a torn or stale mid-run value in a correct
// program. First use falls through to the initializing slow path.
BackendKind backend_cached() noexcept;

// True iff transactions can be attempted at all under the current config.
bool htm_available() noexcept;

// True iff the lazy-subscription mode (ExecMode::kHtmLazy) may run.
// Deferring the lock subscription to commit is only safe on a backend
// whose transactions obey the validated-read discipline — the emulated
// TL2 engine does; plain RTM does not (the Dice et al. hardware
// extensions don't exist on shipping silicon), so the engine and policies
// demote lazy to eager everywhere else. Same guard-free cost as the
// mirrors above: two relaxed loads.
inline bool lazy_available() noexcept {
  return backend_cached() == BackendKind::kEmulated && htm_available();
}

// Whether this build contains the real RTM backend.
bool rtm_compiled_in() noexcept;

}  // namespace ale::htm
