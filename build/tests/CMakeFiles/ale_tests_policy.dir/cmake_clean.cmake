file(REMOVE_RECURSE
  "CMakeFiles/ale_tests_policy.dir/policy/test_adaptive.cpp.o"
  "CMakeFiles/ale_tests_policy.dir/policy/test_adaptive.cpp.o.d"
  "CMakeFiles/ale_tests_policy.dir/policy/test_estimator.cpp.o"
  "CMakeFiles/ale_tests_policy.dir/policy/test_estimator.cpp.o.d"
  "CMakeFiles/ale_tests_policy.dir/policy/test_grouping.cpp.o"
  "CMakeFiles/ale_tests_policy.dir/policy/test_grouping.cpp.o.d"
  "CMakeFiles/ale_tests_policy.dir/policy/test_relearn.cpp.o"
  "CMakeFiles/ale_tests_policy.dir/policy/test_relearn.cpp.o.d"
  "CMakeFiles/ale_tests_policy.dir/policy/test_static.cpp.o"
  "CMakeFiles/ale_tests_policy.dir/policy/test_static.cpp.o.d"
  "ale_tests_policy"
  "ale_tests_policy.pdb"
  "ale_tests_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ale_tests_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
