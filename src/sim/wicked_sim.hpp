// Structure-faithful virtual-time model of the Figure-5 benchmark: the
// Kyoto-style two-level locking (method readers-writer lock over per-slot
// locks) rather than the generic single-lock model in simulator.hpp.
//
// What it captures that the generic model cannot:
//  * RW read-acquisition contention: every Lock-mode record operation
//    updates the shared reader count, so its cost grows with the number of
//    concurrent acquirers (the T2-2 scalability limiter the paper's
//    trylockspin discussion is about);
//  * the hit/miss split: a get that misses completes in external SWOpt
//    without touching the RW lock (the 42% statistic); a hit self-aborts
//    and retries — under SL that means paying the RW acquisition, under
//    All the preceding HTM attempt usually absorbs it ("using HTM for the
//    external critical section reduces the number of acquisition trials
//    for the RW-Lock, which reduces contention at higher thread counts");
//  * per-slot lock queueing and same-slot HTM dooming for the nested
//    critical section;
//  * Lock-mode readers aborting concurrent elided executions through the
//    shared RW-lock cache line (real HTM subscribes the line, not the
//    predicate).
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/prng.hpp"
#include "sim/model.hpp"

namespace ale::sim {

enum class WickedPolicyKind : std::uint8_t {
  kInstrumented,  // RW read lock + slot lock, no elision
  kStaticSL,      // external SWOpt → Lock
  kStaticHL,      // external HTM → Lock
  kStaticAll,     // external HTM → SWOpt → Lock (inner HTM-only)
  kAdaptiveSL,    // measures {Lock, SL}, converges to the best
  kAdaptiveAll,   // measures {Lock, SL, HL, All}, converges to the best
};
const char* to_string(WickedPolicyKind k) noexcept;

struct WickedSimConfig {
  SimPlatform platform = t2_platform();
  bool nomutate = true;
  double hit_rate = 0.58;      // nomutate: fraction of gets that hit
  double mutate_frac = 0.49;   // mixed wicked: sets/removes
  unsigned num_slots = 16;

  // Costs (cycles).
  double rw_acquire_base = 50;        // uncontended read acquire+release
  double rw_contention_per_acq = 45;  // extra per concurrent acquirer
  double search_cycles = 180;         // bucket search inside the slot
  double slot_mutate_cycles = 120;    // extra work for a mutation
  double noncs_cycles = 140;
  double swopt_validation_frac = 0.15;

  unsigned htm_attempts = 5;  // X for static HTM-bearing policies
  std::uint32_t adaptive_phase_ops = 2000;
};

struct WickedSimResult {
  std::uint64_t ops = 0;
  double virtual_cycles = 0;
  double throughput = 0;  // ops per million cycles
  std::uint64_t outer_htm = 0;    // ops completed with elided RW lock (HTM)
  std::uint64_t outer_swopt = 0;  // ops completed in external SWOpt
  std::uint64_t outer_lock = 0;   // ops that acquired the RW read lock
  std::uint64_t htm_aborts = 0;
  double swopt_success_share = 0;  // of get operations (the 42% statistic)
  WickedPolicyKind converged_to = WickedPolicyKind::kInstrumented;
};

WickedSimResult simulate_wicked(const WickedSimConfig& cfg,
                                WickedPolicyKind policy, unsigned threads,
                                std::uint64_t seed = 1,
                                std::uint64_t target_ops = 40000);

}  // namespace ale::sim
