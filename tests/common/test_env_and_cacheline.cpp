#include <gtest/gtest.h>

#include <cstdlib>

#include "common/cacheline.hpp"
#include "common/cpu.hpp"
#include "common/env.hpp"

namespace ale {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {}
  ~EnvGuard() { unsetenv(name_); }
  void set(const char* v) { setenv(name_, v, 1); }
  const char* name_;
};

TEST(Env, StringLookup) {
  EnvGuard g("ALE_TEST_STR");
  EXPECT_FALSE(env_string("ALE_TEST_STR").has_value());
  g.set("hello");
  EXPECT_EQ(env_string("ALE_TEST_STR").value(), "hello");
}

TEST(Env, IntParsingAndFallback) {
  EnvGuard g("ALE_TEST_INT");
  EXPECT_EQ(env_int("ALE_TEST_INT", 7), 7);
  g.set("42");
  EXPECT_EQ(env_int("ALE_TEST_INT", 7), 42);
  g.set("-13");
  EXPECT_EQ(env_int("ALE_TEST_INT", 7), -13);
  g.set("not-a-number");
  EXPECT_EQ(env_int("ALE_TEST_INT", 7), 7);
  g.set("12abc");
  EXPECT_EQ(env_int("ALE_TEST_INT", 7), 7);
}

TEST(Env, DoubleParsing) {
  EnvGuard g("ALE_TEST_DBL");
  EXPECT_DOUBLE_EQ(env_double("ALE_TEST_DBL", 0.5), 0.5);
  g.set("0.25");
  EXPECT_DOUBLE_EQ(env_double("ALE_TEST_DBL", 0.5), 0.25);
  g.set("oops");
  EXPECT_DOUBLE_EQ(env_double("ALE_TEST_DBL", 0.5), 0.5);
}

TEST(Env, BoolParsing) {
  EnvGuard g("ALE_TEST_BOOL");
  EXPECT_TRUE(env_bool("ALE_TEST_BOOL", true));
  for (const char* v : {"1", "true", "YES", "On"}) {
    g.set(v);
    EXPECT_TRUE(env_bool("ALE_TEST_BOOL", false)) << v;
  }
  for (const char* v : {"0", "false", "NO", "Off"}) {
    g.set(v);
    EXPECT_FALSE(env_bool("ALE_TEST_BOOL", true)) << v;
  }
  g.set("maybe");
  EXPECT_TRUE(env_bool("ALE_TEST_BOOL", true));
}

TEST(Env, Uint64ParsingDecimalAndHex) {
  EnvGuard g("ALE_TEST_U64");
  EXPECT_EQ(env_uint64("ALE_TEST_U64", 9), 9u);
  g.set("42");
  EXPECT_EQ(env_uint64("ALE_TEST_U64", 9), 42u);
  g.set("0x5eed5eed5eed5eed");
  EXPECT_EQ(env_uint64("ALE_TEST_U64", 9), 0x5eed5eed5eed5eedULL);
  g.set("18446744073709551615");  // full width round-trips
  EXPECT_EQ(env_uint64("ALE_TEST_U64", 9), ~0ULL);
  g.set("junk");
  EXPECT_EQ(env_uint64("ALE_TEST_U64", 9), 9u);
  g.set("12tail");
  EXPECT_EQ(env_uint64("ALE_TEST_U64", 9), 9u);
}

TEST(SpecClauses, BasicGrammar) {
  const auto clauses =
      parse_spec_clauses("htm.commit:p=0.5,seed=7;lock.hold:every=100");
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_EQ(clauses[0].head, "htm.commit");
  ASSERT_EQ(clauses[0].params.size(), 2u);
  EXPECT_EQ(clauses[0].params[0].first, "p");
  EXPECT_EQ(clauses[0].params[0].second, "0.5");
  EXPECT_EQ(clauses[0].param("seed").value(), "7");
  EXPECT_FALSE(clauses[0].param("missing").has_value());
  EXPECT_EQ(clauses[1].head, "lock.hold");
  EXPECT_EQ(clauses[1].param("every").value(), "100");
}

TEST(SpecClauses, WhitespaceEmptiesAndValuelessParams) {
  const auto clauses = parse_spec_clauses("  a : flag , k = v ;; b ;");
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_EQ(clauses[0].head, "a");
  ASSERT_EQ(clauses[0].params.size(), 2u);
  EXPECT_EQ(clauses[0].params[0].first, "flag");
  EXPECT_EQ(clauses[0].params[0].second, "");
  EXPECT_EQ(clauses[0].param("k").value(), "v");
  EXPECT_EQ(clauses[1].head, "b");
  EXPECT_TRUE(clauses[1].params.empty());
}

TEST(SpecClauses, EmptySpecYieldsNothing) {
  EXPECT_TRUE(parse_spec_clauses("").empty());
  EXPECT_TRUE(parse_spec_clauses("   ").empty());
  EXPECT_TRUE(parse_spec_clauses(";;;").empty());
}

TEST(CacheLine, LineIndexing) {
  alignas(kCacheLineSize) char buf[3 * kCacheLineSize];
  EXPECT_EQ(cache_line_of(&buf[0]), cache_line_of(&buf[63]));
  EXPECT_NE(cache_line_of(&buf[0]), cache_line_of(&buf[64]));
  EXPECT_EQ(cache_line_of(&buf[64]) - cache_line_of(&buf[0]), 1u);
}

TEST(CacheLine, CacheAlignedSpacing) {
  CacheAligned<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i]);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, kCacheLineSize);
    EXPECT_EQ(a % kCacheLineSize, 0u);
  }
  CacheAligned<int> v(42);
  EXPECT_EQ(*v, 42);
  *v = 7;
  EXPECT_EQ(v.value, 7);
}

TEST(Cpu, RtmDetectionDoesNotCrash) {
  // Value is machine-dependent; just exercise the CPUID path.
  (void)cpu_has_rtm();
  cpu_pause();
  SUCCEED();
}

}  // namespace
}  // namespace ale
