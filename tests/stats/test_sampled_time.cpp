#include <gtest/gtest.h>

#include "stats/sampled_time.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

TEST(SampledTime, EmptySummaries) {
  SampledTime st;
  EXPECT_EQ(st.sample_count(), 0u);
  EXPECT_EQ(st.mean_ticks(), 0.0);
  EXPECT_EQ(st.min_ns(), 0.0);
  EXPECT_FALSE(st.is_reliable());
}

TEST(SampledTime, RecordAccumulates) {
  SampledTime st;
  st.record(100);
  st.record(300);
  EXPECT_EQ(st.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(st.mean_ticks(), 200.0);
}

TEST(SampledTime, MinMaxTracked) {
  SampledTime st;
  st.record(50);
  st.record(500);
  st.record(5);
  EXPECT_GE(st.max_ns(), st.min_ns());
  EXPECT_GT(st.max_ns(), 0.0);
}

TEST(SampledTime, SamplingRateApproximatelyHonored) {
  SampledTime st(0.03);
  int sampled = 0;
  constexpr int kEvents = 100000;
  for (int i = 0; i < kEvents; ++i) {
    if (st.maybe_start()) ++sampled;
  }
  // 3% ± generous slack (binomial, σ ≈ 54).
  EXPECT_GT(sampled, 2000);
  EXPECT_LT(sampled, 4000);
}

TEST(SampledTime, AlwaysSampleRate) {
  SampledTime st(1.0);
  for (int i = 0; i < 100; ++i) {
    auto t = st.maybe_start();
    ASSERT_TRUE(t.has_value());
    st.record_since(*t);
  }
  EXPECT_EQ(st.sample_count(), 100u);
  EXPECT_TRUE(st.is_reliable());
}

TEST(SampledTime, ResetClearsEverything) {
  SampledTime st;
  st.record(42);
  st.reset();
  EXPECT_EQ(st.sample_count(), 0u);
  EXPECT_EQ(st.mean_ticks(), 0.0);
}

TEST(SampledTime, ConcurrentRecordsAllCounted) {
  SampledTime st;
  test::run_threads(4, [&](unsigned) {
    for (int i = 0; i < 10000; ++i) st.record(10);
  });
  EXPECT_EQ(st.sample_count(), 40000u);
  EXPECT_DOUBLE_EQ(st.mean_ticks(), 10.0);
}

TEST(TicksCalibration, PositiveRatio) {
  EXPECT_GT(ticks_per_ns(), 0.0);
  const std::uint64_t t0 = now_ticks();
  const std::uint64_t t1 = now_ticks();
  EXPECT_GE(t1, t0);
}

}  // namespace
}  // namespace ale
