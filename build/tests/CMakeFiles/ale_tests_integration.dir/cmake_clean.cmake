file(REMOVE_RECURSE
  "CMakeFiles/ale_tests_integration.dir/integration/test_integration.cpp.o"
  "CMakeFiles/ale_tests_integration.dir/integration/test_integration.cpp.o.d"
  "ale_tests_integration"
  "ale_tests_integration.pdb"
  "ale_tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ale_tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
