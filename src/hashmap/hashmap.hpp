// The paper's HashMap example (§3): a chained hash map protected by a
// single lock (tblLock), integrated with ALE so that every operation can
// execute in HTM, SWOpt, or Lock mode.
//
//  * Get has a SWOpt path: the templated get_impl<SWOptMode> below is a
//    faithful port of Figure 1 — snapshot the version (waiting until even),
//    validate before using any value read since the last validation, and
//    report -1 on interference so the wrapper retries under policy control.
//  * Insert / Remove bracket their structural changes (link / unlink) in a
//    *conflicting region* on the map's ConflictIndicator, elided via
//    COULD_SWOPT_BE_RUNNING when no SWOpt execution could observe it
//    (§3.3).
//  * The §3.3 advanced variants are provided too:
//      - remove_selfabort(): SWOpt path that self-aborts when it reaches a
//        conflicting action (absent keys complete entirely in SWOpt),
//      - remove_optimistic() / insert_optimistic(): SWOpt search phase with
//        a nested no-SWOpt critical section performing the conflicting
//        action after re-validating (§3.3's nesting pattern).
//
// Memory reclamation follows the paper's assumption ("the application does
// not deallocate memory during its lifetime"): removed nodes go onto a
// retire list and are freed only by the destructor, so optimistic readers
// never fault. All shared fields are accessed via tx_load/tx_store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "core/ale.hpp"
#include "sync/spinlock.hpp"

namespace ale {

// §3.2's untested suggestion, implemented here as an extension:
// "Concurrency could be improved by using multiple version numbers, say one
// for each HashMap bucket." With per-bucket indicators a conflicting action
// invalidates only SWOpt readers of the same bucket, instead of every
// reader of the map.
struct HashMapOptions {
  bool per_bucket_indicators = false;
};

class AleHashMap {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;
  using Options = HashMapOptions;

  explicit AleHashMap(std::size_t num_buckets = 1024,
                      std::string name = "tblLock", Options options = {});
  ~AleHashMap();
  AleHashMap(const AleHashMap&) = delete;
  AleHashMap& operator=(const AleHashMap&) = delete;

  // Copies the value for `key` into `out` and returns true if present
  // (§3's Get). SWOpt-enabled.
  bool get(Key key, Value& out);

  // Inserts key→value, overwriting any existing mapping (§3's Insert).
  // Returns true iff the key was newly inserted.
  bool insert(Key key, Value value);

  // Removes `key` if present (§3's Remove); returns true iff removed.
  bool remove(Key key);

  // §3.3 self-abort variant of Remove: runs in SWOpt until a conflicting
  // action is actually needed, then self-aborts and retries without SWOpt.
  bool remove_selfabort(Key key);

  // §3.3 nested-critical-section variants: SWOpt search phase, conflicting
  // action performed in a nested no-SWOpt critical section.
  bool remove_optimistic(Key key);
  bool insert_optimistic(Key key, Value value);

  LockMd& lock_md() noexcept { return md_; }

  // Sequential helpers for tests (run in Lock mode via a plain CS).
  std::size_t size();
  bool contains(Key key);

 private:
  struct Node {
    Key key = 0;
    Value val = 0;
    Node* next = nullptr;
  };
  struct Bucket {
    Node* head = nullptr;
  };

  std::size_t bucket_index(Key key) const noexcept {
    return (key * 0x9e3779b97f4a7c15ULL) >> shift_;
  }

  // Figure 1: auxiliary method used by Get. Returns 1 = found, 0 = absent,
  // -1 = SWOpt interference detected.
  template <bool SWOptMode>
  std::int32_t get_impl(Key key, Value& out) const;

  // Search for key in its bucket: returns the node and the predecessor's
  // next-pointer cell. Pessimistic-mode only (unvalidated traversal).
  Node* find(Key key, Node**& prev_cell) const;

  // Validated SWOpt search (§3.3 advanced variants). Returns -1 on
  // interference, 0 absent, 1 found.
  std::int32_t find_validated(Key key, std::uint64_t snapshot,
                              Node**& prev_cell, Node*& node) const;

  void unlink_and_retire(Node** prev_cell, Node* node);
  void link_front(std::size_t bucket, Node* node);

  // The conflict indicator guarding `bucket`: the single map-wide tblVer
  // by default, or the bucket's own indicator with per_bucket_indicators.
  ConflictIndicator& indicator_for(std::size_t bucket) const {
    return options_.per_bucket_indicators ? bucket_vers_[bucket].value
                                          : ver_;
  }

  mutable TatasLock lock_;
  LockMd md_;
  Options options_;
  mutable ConflictIndicator ver_;  // the paper's tblVer
  mutable std::vector<CacheAligned<ConflictIndicator>> bucket_vers_;
  std::vector<Bucket> buckets_;
  unsigned shift_;
  Node* retired_head_ = nullptr;  // accessed via tx accessors
};

}  // namespace ale
