// Fixed-bucket attempt histogram.
//
// The adaptive policy's second learning sub-phase (§4.2) builds "a histogram
// of the number of attempts required to succeed in HTM mode" plus a count of
// executions that never succeeded in HTM. Buckets are plain relaxed atomics:
// the histogram is only populated during (bounded) learning phases, so
// contention is not a concern and exactness helps the estimator.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace ale {

/// Histogram of HTM attempts-to-success per execution, plus a count of
/// executions that never succeeded. Thread-safe (relaxed atomics).
template <std::size_t MaxAttempts = 64>
class AttemptHistogram {
 public:
  static constexpr std::size_t kMaxAttempts = MaxAttempts;

  /// Record an execution that succeeded on attempt `k` (1-based,
  /// clamped to [1, MaxAttempts]).
  void record_success(std::size_t k) noexcept {
    if (k == 0) k = 1;
    if (k > MaxAttempts) k = MaxAttempts;
    buckets_[k - 1].fetch_add(1, std::memory_order_relaxed);
  }

  /// Record an execution that exhausted its attempts without succeeding.
  void record_failure() noexcept {
    failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Executions that succeeded exactly on attempt `k` (1-based).
  std::uint64_t successes_at(std::size_t k) const noexcept {
    if (k == 0 || k > MaxAttempts) return 0;
    return buckets_[k - 1].load(std::memory_order_relaxed);
  }

  /// Executions that never succeeded in HTM.
  std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

  /// Sum of all success buckets.
  std::uint64_t total_successes() const noexcept {
    std::uint64_t t = 0;
    for (const auto& b : buckets_) t += b.load(std::memory_order_relaxed);
    return t;
  }

  /// All recorded executions, successful or not.
  std::uint64_t total() const noexcept {
    return total_successes() + failures();
  }

  /// Number of executions that would succeed within a budget of `x`
  /// attempts — the adaptive policy's X-learning estimator input (§4.2).
  std::uint64_t successes_within(std::size_t x) const noexcept {
    std::uint64_t t = 0;
    for (std::size_t k = 1; k <= x && k <= MaxAttempts; ++k) {
      t += successes_at(k);
    }
    return t;
  }

  /// Largest attempt index with a recorded success (0 if none).
  std::size_t max_successful_attempt() const noexcept {
    for (std::size_t k = MaxAttempts; k >= 1; --k) {
      if (successes_at(k) > 0) return k;
    }
    return 0;
  }

  /// Clear every bucket (used between learning phases).
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    failures_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, MaxAttempts> buckets_{};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace ale
