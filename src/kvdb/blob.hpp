// Immutable heap blobs for kvdb keys and values.
//
// The emulated HTM tracks word-sized locations only (htm/access.hpp), so
// variable-length strings are boxed: a node stores a Blob* and mutation is
// a single transactional pointer swap. Blob contents are written once,
// before publication, and never change — so readers (including SWOpt paths
// holding a stale pointer) can copy them with plain loads. Retired blobs
// are freed only at database destruction, per the paper's no-deallocation
// assumption.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>

namespace ale::kvdb {

class Blob {
 public:
  static Blob* make(std::string_view s) {
    void* mem = ::operator new(sizeof(Blob) + s.size());
    return new (mem) Blob(s);
  }
  static void destroy(Blob* b) {
    if (b != nullptr) {
      b->~Blob();
      ::operator delete(b);
    }
  }

  std::string_view view() const noexcept {
    return std::string_view(data(), len_);
  }
  bool equals(std::string_view s) const noexcept {
    return len_ == s.size() && std::memcmp(data(), s.data(), len_) == 0;
  }
  std::uint32_t size() const noexcept { return len_; }

  // Intrusive retire-list link (accessed via tx accessors).
  Blob* next_retired = nullptr;

 private:
  explicit Blob(std::string_view s) : len_(static_cast<std::uint32_t>(s.size())) {
    std::memcpy(data_start(), s.data(), s.size());
  }
  ~Blob() = default;

  const char* data() const noexcept {
    return reinterpret_cast<const char*>(this) + sizeof(Blob);
  }
  char* data_start() noexcept {
    return reinterpret_cast<char*>(this) + sizeof(Blob);
  }

  std::uint32_t len_;
};

}  // namespace ale::kvdb
