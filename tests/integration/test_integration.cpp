// Cross-module integration: env-driven configuration, multi-lock systems,
// full pipeline (policy → engine → stats → report), teardown hygiene.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/ale.hpp"
#include "hashmap/hashmap.hpp"
#include "kvdb/wicked.hpp"
#include "policy/adaptive_policy.hpp"
#include "policy/install.hpp"
#include "policy/static_policy.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct IntegrationTest : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
  void TearDown() override {
    set_global_policy(nullptr);
    unsetenv("ALE_POLICY");
  }
};

TEST_F(IntegrationTest, EnvPolicyInstall) {
  setenv("ALE_POLICY", "static-all-7:2", 1);
  ASSERT_TRUE(install_policy_from_env());
  EXPECT_STREQ(global_policy().name(), "static");
  setenv("ALE_POLICY", "adaptive", 1);
  ASSERT_TRUE(install_policy_from_env());
  EXPECT_STREQ(global_policy().name(), "adaptive");
  setenv("ALE_POLICY", "garbage", 1);
  EXPECT_FALSE(install_policy_from_env());
  EXPECT_STREQ(global_policy().name(), "adaptive");  // unchanged
  unsetenv("ALE_POLICY");
  EXPECT_FALSE(install_policy_from_env());
}

TEST_F(IntegrationTest, PerLockPolicyOverride) {
  // Global adaptive, but one lock pinned to lock-only: its critical
  // sections must never elide while the other lock's do.
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  LockOnlyPolicy pinned;
  TatasLock lock_a, lock_b;
  LockMd md_a("integ.pinned");
  LockMd md_b("integ.free");
  md_a.set_policy(&pinned);
  static ScopeInfo scope_a("csA");
  static ScopeInfo scope_b("csB");
  ExecMode mode_a = ExecMode::kHtm, mode_b = ExecMode::kLock;
  execute_cs(lock_api<TatasLock>(), &lock_a, md_a, scope_a,
             [&](CsExec& cs) { mode_a = cs.exec_mode(); });
  execute_cs(lock_api<TatasLock>(), &lock_b, md_b, scope_b,
             [&](CsExec& cs) { mode_b = cs.exec_mode(); });
  EXPECT_EQ(mode_a, ExecMode::kLock);
  EXPECT_EQ(mode_b, ExecMode::kHtm);
  md_a.set_policy(nullptr);
}

TEST_F(IntegrationTest, TwoContainersShareNothing) {
  test::PolicyInstaller p(
      std::make_unique<StaticPolicy>(StaticPolicyConfig{.x = 4, .y = 4}));
  AleHashMap map_a(64, "integ.mapA");
  AleHashMap map_b(64, "integ.mapB");
  test::run_threads(4, [&](unsigned idx) {
    AleHashMap& mine = idx % 2 == 0 ? map_a : map_b;
    const std::uint64_t base = idx < 2 ? 0 : 1000;
    for (int i = 0; i < 1500; ++i) {
      mine.insert(base + (i % 50), i);
      if (i % 3 == 0) mine.remove(base + (i % 50));
    }
  });
  // Each map holds only its own keys.
  EXPECT_EQ(map_a.size() + map_b.size(),
            static_cast<std::size_t>(map_a.size() + map_b.size()));
  std::uint64_t v;
  EXPECT_FALSE(map_a.get(99999, v));
}

TEST_F(IntegrationTest, AdaptiveHashMapConvergesAndStaysCorrect) {
  AdaptiveConfig cfg;
  cfg.phase_len = 100;
  auto policy = std::make_unique<AdaptivePolicy>(cfg);
  AdaptivePolicy* ap = policy.get();
  test::PolicyInstaller p(std::move(policy));
  AleHashMap map(128, "integ.adaptive");
  // Drive a read-heavy workload to convergence, checking correctness via
  // per-thread key ownership.
  test::run_threads(3, [&](unsigned idx) {
    const std::uint64_t base = static_cast<std::uint64_t>(idx + 1) << 32;
    Xoshiro256 rng(idx);
    bool present[8] = {};
    for (int i = 0; i < 6000; ++i) {
      const std::uint64_t s = rng.next_below(8);
      const std::uint64_t k = base + s;
      std::uint64_t v = 0;
      if (rng.next_bool(0.1)) {
        map.insert(k, k);
        present[s] = true;
      } else if (rng.next_bool(0.05)) {
        map.remove(k);
        present[s] = false;
      } else if (map.get(k, v) != present[s]) {
        ADD_FAILURE() << "visibility mismatch";
      }
    }
  });
  EXPECT_TRUE(ap->converged(map.lock_md()));
  const std::string report = report_string();
  EXPECT_NE(report.find("integ.adaptive"), std::string::npos);
}

TEST_F(IntegrationTest, MixedContainersUnderOnePolicy) {
  test::PolicyInstaller p(
      std::make_unique<StaticPolicy>(StaticPolicyConfig{.x = 3, .y = 5}));
  AleHashMap map(64, "integ.mixed.map");
  kvdb::ShardedDb db(kvdb::DbConfig{.num_slots = 4}, "integ.mixed.db");
  test::run_threads(4, [&](unsigned idx) {
    Xoshiro256 rng(idx);
    std::string key = "k" + std::to_string(idx);
    std::string out;
    for (int i = 0; i < 1000; ++i) {
      map.insert(idx * 100 + (i % 10), i);
      db.set(key, std::to_string(i));
      std::uint64_t v;
      map.get(idx * 100 + (i % 10), v);
      db.get(key, out);
    }
  });
  EXPECT_EQ(db.count(), 4u);
  EXPECT_EQ(map.size(), 40u);
}

// ---- differential cross-mode oracle ------------------------------------
//
// The same seeded operation sequence, replayed once per execution-mode pin
// (Lock baseline, eager HTM, lazy HTM, SWOpt): every pin must produce a
// bit-identical final map state and identical per-thread observation
// histories. Threads own disjoint key ranges, so the outcome is fully
// determined by the op sequence and any divergence is an elision
// correctness bug, not an interleaving artifact. This is the cheap
// always-on complement to the ale::check explorer: the explorer proves the
// lazy protocol safe on adversarial interleavings, this proves all four
// modes compute the same function on a production-shaped workload.

struct OracleOutcome {
  std::array<std::uint64_t, 2> observed{};  // per-thread get() history hash
  std::vector<std::pair<std::uint64_t, std::uint64_t>> state;  // sorted k,v
};

OracleOutcome run_oracle_workload(const char* spec) {
  OracleOutcome out;
  auto policy = make_policy(spec);
  if (!policy) {
    ADD_FAILURE() << "make_policy failed for " << spec;
    return out;
  }
  test::PolicyInstaller inst(std::move(policy));
  AleHashMap map(128, std::string("integ.oracle.") + spec);
  test::run_threads(2, [&](unsigned idx) {
    const std::uint64_t base = static_cast<std::uint64_t>(idx + 1) << 32;
    Xoshiro256 rng(0x0a11ce + idx);  // fixed seed: one sequence per thread
    std::uint64_t history = 0;
    for (std::uint32_t i = 0; i < 4000; ++i) {
      const std::uint64_t slot = rng.next_below(16);
      const std::uint64_t key = base + slot;
      const std::uint64_t op = rng.next_below(100);
      if (op < 30) {
        map.insert(key, key * 1000003u + i);
      } else if (op < 45) {
        map.remove(key);
      } else {
        std::uint64_t v = 0;
        const bool hit = map.get(key, v);
        // FNV-style fold: the full observation history must match, not
        // just the final state — a stale read that later self-corrects
        // still perturbs this hash.
        history = history * 1099511628211ull + (hit ? v + 1 : 0);
      }
    }
    out.observed[idx] = history;
  });
  for (unsigned idx = 0; idx < 2; ++idx) {
    for (std::uint64_t slot = 0; slot < 16; ++slot) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(idx + 1) << 32) + slot;
      std::uint64_t v = 0;
      if (map.get(key, v)) out.state.emplace_back(key, v);
    }
  }
  return out;
}

TEST_F(IntegrationTest, CrossModeDifferentialOracle) {
  const OracleOutcome reference = run_oracle_workload("lockonly");
  EXPECT_FALSE(reference.state.empty());
  for (const char* spec : {"static-hl-8", "static-hll-8", "static-sl-8"}) {
    const OracleOutcome got = run_oracle_workload(spec);
    EXPECT_EQ(got.state, reference.state)
        << spec << ": final map state diverged from the Lock baseline";
    for (unsigned idx = 0; idx < 2; ++idx) {
      EXPECT_EQ(got.observed[idx], reference.observed[idx])
          << spec << ": thread " << idx
          << " observed a different get() history than the Lock baseline";
    }
  }
}

TEST_F(IntegrationTest, LockMdLifecycleIsClean) {
  // Construct/use/destroy many LockMds: the registry and report must stay
  // consistent and no granule is leaked into other locks' reports.
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  for (int round = 0; round < 20; ++round) {
    TatasLock lock;
    LockMd md("integ.ephemeral." + std::to_string(round));
    static ScopeInfo scope("cs");
    for (int i = 0; i < 50; ++i) {
      execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec&) {});
    }
  }
  const std::string report = report_string();
  EXPECT_EQ(report.find("integ.ephemeral."), std::string::npos);
}

TEST_F(IntegrationTest, ProfileSwitchMidProcess) {
  // Reconfiguring between phases (single-threaded moments) must be safe.
  test::PolicyInstaller p(
      std::make_unique<StaticPolicy>(StaticPolicyConfig{.x = 3, .y = 3}));
  TatasLock lock;
  LockMd md("integ.profileswitch");
  static ScopeInfo scope("cs", true);
  std::uint64_t counter = 0;
  for (const char* profile : {"ideal", "rock", "haswell", "t2", "ideal"}) {
    htm::Config c;
    c.backend = htm::BackendKind::kEmulated;
    c.profile = *htm::profile_by_name(profile);
    htm::configure(c);
    for (int i = 0; i < 300; ++i) {
      execute_cs(lock_api<TatasLock>(), &lock, md, scope,
                 [&](CsExec& cs) -> CsBody {
                   if (cs.in_swopt()) {
                     (void)tx_load(counter);
                     return CsBody::kDone;  // read-only SWOpt success
                   }
                   tx_store(counter, tx_load(counter) + 1);
                   return CsBody::kDone;
                 });
    }
  }
  EXPECT_GT(counter, 0u);
  EXPECT_FALSE(lock.is_locked());
}

}  // namespace
}  // namespace ale
