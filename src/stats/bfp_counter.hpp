// BFP statistical counter [Dice, Lev, Moir — "Scalable Statistics
// Counters", SPAA 2013], used by ALE for event counting (§4.3): "a
// statistical counter algorithm which gradually reduces the probability of
// updating shared data, while maintaining high accuracy even after
// relatively small numbers of events. This algorithm supports counters that
// are incremented only by one."
//
// Representation: one 64-bit word holding a binary-floating-point pair
// (mantissa m, exponent e); the projected value is m·2^e. An increment
// updates the word with probability 2^-e, and each physical update adds 2^e
// to the projected value, so the estimate is unbiased. When the mantissa
// reaches the threshold T, it is halved and the exponent bumped (projected
// value unchanged), which halves the future update rate. The relative
// standard error is ≈ sqrt(2/T) once the counter is in the probabilistic
// regime; below T the counter is exact.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

#include "common/prng.hpp"
#include "sync/backoff.hpp"

namespace ale {

/// Scalable statistical event counter: one 64-bit word, probabilistic
/// increments, unbiased estimates. Thread-safe; increment-by-one only.
class BfpCounter {
 public:
  /// T = 512 gives ≈ 6% relative standard error and exact counts up to 511.
  static constexpr std::uint64_t kDefaultThreshold = 512;

  explicit BfpCounter(std::uint64_t threshold = kDefaultThreshold) noexcept
      : threshold_(threshold < 2 ? 2 : threshold) {}

  BfpCounter(const BfpCounter&) = delete;
  BfpCounter& operator=(const BfpCounter&) = delete;

  /// Statistically increment by one (a PRNG roll skips the shared-word
  /// CAS with probability 1 - 2^-e once in the probabilistic regime).
  void inc() noexcept {
    std::uint64_t s = state_.load(std::memory_order_relaxed);
    const std::uint64_t sampled_exp = exponent_of(s);
    if (sampled_exp > 0 &&
        !thread_prng().next_bool(update_probability(sampled_exp))) {
      return;  // This increment is represented statistically.
    }
    force_update(s, sampled_exp);
  }

  /// `n` statistical increments in one call, equivalent in distribution to
  /// n inc() calls but far cheaper for large n. Below the threshold the
  /// whole batch lands in one exact CAS; once probabilistic, the number of
  /// physical updates among n trials is Binomial(n, 2^-e), which we realise
  /// by geometric-skip sampling (one log per physical update instead of one
  /// PRNG roll per trial). Used by the engine's delta flush and by the
  /// converged fast path's 1/rate weighting, so estimates stay unbiased
  /// while most executions touch no shared statistics at all.
  void inc_many(std::uint64_t n) noexcept {
    while (n > 0) {
      std::uint64_t s = state_.load(std::memory_order_relaxed);
      const std::uint64_t e = exponent_of(s);
      if (e == 0) {
        // Exact regime: add everything that fits below the threshold with
        // a single CAS; the increment that reaches it goes through inc()
        // so the halving logic stays in one place.
        const std::uint64_t m = mantissa_of(s);
        const std::uint64_t room = threshold_ - 1 - m;
        const std::uint64_t take = n < room ? n : room;
        if (take == 0) {
          inc();
          --n;
          continue;
        }
        if (state_.compare_exchange_weak(s, pack(m + take, 0),
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
          n -= take;
        }
        continue;
      }
      // Probabilistic regime: skip ~ Geometric(p) trials land no update.
      const double p = update_probability(e);
      const double u = 1.0 - thread_prng().next_double();  // (0, 1]
      const double skip = std::floor(std::log(u) / std::log1p(-p));
      if (skip >= static_cast<double>(n)) return;
      n -= static_cast<std::uint64_t>(skip) + 1;
      force_update(s, e);
    }
  }

  /// Projected (estimated) count: mantissa << exponent. Unbiased; relative
  /// standard error ≈ sqrt(2/T) once probabilistic, exact below T.
  std::uint64_t read() const noexcept {
    const std::uint64_t s = state_.load(std::memory_order_relaxed);
    return mantissa_of(s) << exponent_of(s);
  }

  /// True while the counter is still exact (no probabilistic updates yet).
  bool is_exact() const noexcept {
    return exponent_of(state_.load(std::memory_order_relaxed)) == 0;
  }

  /// Zero the counter (not linearizable against concurrent inc()).
  void reset() noexcept { state_.store(0, std::memory_order_relaxed); }

 private:
  // Commit one physical update sampled against `sampled_exp`, starting from
  // observed state `s`. If a CAS fails and the exponent has advanced
  // meanwhile, re-roll with the probability ratio so the expected
  // contribution of the update stays exactly one logical increment.
  void force_update(std::uint64_t s, std::uint64_t sampled_exp) noexcept {
    Backoff backoff;
    for (;;) {
      const std::uint64_t e = exponent_of(s);
      if (e > sampled_exp) {
        // Exponent advanced under us; keep the update with probability
        // 2^(sampled_exp - e) so expected contribution stays 1.
        if (!thread_prng().next_bool(
                static_cast<double>(1ULL << sampled_exp) /
                static_cast<double>(1ULL << e))) {
          return;
        }
        sampled_exp = e;
      }
      const std::uint64_t m = mantissa_of(s) + 1;
      const std::uint64_t next =
          (m >= threshold_) ? pack(m / 2, e + 1) : pack(m, e);
      if (state_.compare_exchange_weak(s, next, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
        return;
      }
      backoff.pause();  // §4.3: exponential backoff on update contention.
    }
  }

  static constexpr unsigned kExpBits = 8;
  static constexpr std::uint64_t kExpMask = (1ULL << kExpBits) - 1;

  static constexpr std::uint64_t pack(std::uint64_t m,
                                      std::uint64_t e) noexcept {
    return (m << kExpBits) | (e & kExpMask);
  }
  static constexpr std::uint64_t mantissa_of(std::uint64_t s) noexcept {
    return s >> kExpBits;
  }
  static constexpr std::uint64_t exponent_of(std::uint64_t s) noexcept {
    return s & kExpMask;
  }
  static double update_probability(std::uint64_t e) noexcept {
    return 1.0 / static_cast<double>(1ULL << e);
  }

  std::atomic<std::uint64_t> state_{0};
  std::uint64_t threshold_;
};

}  // namespace ale
