#include "core/context.hpp"

namespace ale {

std::uint32_t ScopeInfo::next_id() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

ContextNode::~ContextNode() {
  for (ContextNode* c : children_) delete c;
}

ContextNode* ContextNode::child(const ScopeInfo* scope) {
  children_lock_.lock();
  for (ContextNode* c : children_) {
    if (c->scope_ == scope) {
      children_lock_.unlock();
      return c;
    }
  }
  auto* node = new ContextNode(scope, this);
  children_.push_back(node);
  children_lock_.unlock();
  return node;
}

std::string ContextNode::path() const {
  if (parent_ == nullptr) return "<root>";
  std::string prefix = parent_->parent_ == nullptr ? "" : parent_->path() + "/";
  return prefix + (scope_ != nullptr ? scope_->label : "?");
}

ContextNode& context_root() {
  // Leaked: must outlive thread-local contexts during static teardown.
  static ContextNode* root = new ContextNode(nullptr, nullptr);
  return *root;
}

}  // namespace ale
