#include "check/scenarios.hpp"

#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "core/conflict.hpp"
#include "core/elidable_shared_lock.hpp"
#include "core/execute_cs.hpp"
#include "core/lockmd.hpp"
#include "core/policy_iface.hpp"
#include "hashmap/hashmap.hpp"
#include "htm/access.hpp"
#include "kvdb/sharded_db.hpp"
#include "policy/install.hpp"
#include "sync/lockapi.hpp"
#include "sync/spinlock.hpp"

namespace ale::check::scenarios {

const char* to_string(ModePin pin) noexcept {
  switch (pin) {
    case ModePin::kLockOnly: return "lock";
    case ModePin::kSwOptOnly: return "swopt";
    case ModePin::kHtmOnly: return "htm";
    case ModePin::kHtmLazyOnly: return "htmlazy";
  }
  return "?";
}

const char* policy_spec(ModePin pin) noexcept {
  switch (pin) {
    case ModePin::kLockOnly: return "lockonly";
    case ModePin::kSwOptOnly: return "static-sl-8";
    case ModePin::kHtmOnly: return "static-hl-8";
    case ModePin::kHtmLazyOnly: return "static-hll-8";
  }
  return "lockonly";
}

namespace {

// RAII pin: install the mode's policy, restore the library default after.
struct ScopedPolicy {
  explicit ScopedPolicy(const char* spec) {
    set_global_policy(make_policy(spec));
  }
  ~ScopedPolicy() { set_global_policy(nullptr); }
};

// Mirror of AleHashMap's bucket function (hashmap.hpp) so the workload can
// pick keys that share one bucket chain — where the retire-list hazard
// lives. If the map's hash ever changes this stays correct, merely less
// collision-targeted.
std::uint64_t bucket_of(std::uint64_t key, unsigned shift) noexcept {
  return (key * 0x9e3779b97f4a7c15ULL) >> shift;
}

// sentinel + two distinct churn keys, all in one bucket of a 4-bucket map.
struct ChainKeys {
  std::uint64_t sentinel;
  std::uint64_t churn_a;
  std::uint64_t churn_b;
};

ChainKeys colliding_keys() {
  constexpr unsigned kShift = 62;  // 4 buckets
  ChainKeys k{1, 0, 0};
  const std::uint64_t target = bucket_of(k.sentinel, kShift);
  std::uint64_t next = k.sentinel + 1;
  for (std::uint64_t* out : {&k.churn_a, &k.churn_b}) {
    while (bucket_of(next, kShift) != target) ++next;
    *out = next++;
  }
  return k;
}

// Mirror of ShardedDb::hash_of (sharded_db.cpp: FNV-1a + finalizer) and its
// slot/bucket mapping, for the same reason as bucket_of above: the kvdb
// scenario needs churn keys that land in the sentinel's slot *and* bucket,
// or the reader's chain is never perturbed and the retire-list hazard
// stays unreachable. A random key only collides 1-in-(slots*buckets).
std::uint64_t kvdb_hash(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

ChainKeys colliding_kvdb_keys(std::size_t num_slots,
                              std::size_t buckets_per_slot) {
  const auto place = [&](std::uint64_t key) {
    const std::uint64_t h = kvdb_hash(std::to_string(key));
    return std::make_pair(h % num_slots, (h >> 16) % buckets_per_slot);
  };
  ChainKeys k{0, 0, 0};
  const auto target = place(k.sentinel);
  std::uint64_t next = k.sentinel + 1;
  for (std::uint64_t* out : {&k.churn_a, &k.churn_b}) {
    while (place(next) != target) ++next;
    *out = next++;
  }
  return k;
}

}  // namespace

std::optional<std::string> hashmap_schedule(ScheduleCtx& ctx,
                                            const MapScenarioOptions& o) {
  ScopedPolicy pin(policy_spec(o.pin));
  // Heap-allocated: the engine hashes the addresses of lock metadata (the
  // granule cache), and main-stack addresses shift with the size of the
  // process's argv/env block — heap addresses don't (given a fixed layout),
  // which cross-process schedule replay depends on.
  const auto map_owner = std::make_unique<AleHashMap>(4, "check.map");
  AleHashMap& map = *map_owner;
  const ChainKeys keys = colliding_keys();
  constexpr std::uint64_t kSentinelValue = 111;
  map.insert(keys.sentinel, kSentinelValue);

  History hist(3);
  const unsigned ops = o.ops_per_thread;

  std::vector<std::function<void()>> bodies;
  // Reader: hammers the always-present sentinel through the bucket chain
  // the other threads churn ahead of it (link_front puts new nodes before
  // the sentinel).
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::uint64_t out = 0;
      const std::size_t op =
          hist.invoke(0, OpKind::kGet, keys.sentinel);
      const bool ok = map.get(keys.sentinel, out);
      hist.respond(0, op, ok, out);
    }
  });
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::size_t op = hist.invoke(1, OpKind::kInsert, keys.churn_a, 100 + i);
      hist.respond(1, op, map.insert(keys.churn_a, 100 + i));
      op = hist.invoke(1, OpKind::kRemove, keys.churn_a);
      hist.respond(1, op, map.remove(keys.churn_a));
    }
  });
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::uint64_t out = 0;
      std::size_t op = hist.invoke(2, OpKind::kGet, keys.churn_a);
      // Sequenced before respond(): `out` must be written before it is read
      // as an argument (argument evaluation order is unspecified).
      const bool ok = map.get(keys.churn_a, out);
      hist.respond(2, op, ok, out);
      op = hist.invoke(2, OpKind::kInsert, keys.churn_b, 200 + i);
      hist.respond(2, op, map.insert(keys.churn_b, 200 + i));
      op = hist.invoke(2, OpKind::kRemove, keys.churn_b);
      hist.respond(2, op, map.remove(keys.churn_b));
    }
  });
  ctx.run_threads(std::move(bodies));

  const LinearizeResult lin = check_map_history(
      hist.merged(), {{keys.sentinel, kSentinelValue}});
  if (!lin.ok) {
    return "hashmap(" + std::string(to_string(o.pin)) + "): " +
           lin.explanation;
  }
  return std::nullopt;
}

std::optional<std::string> kvdb_schedule(ScheduleCtx& ctx,
                                         const MapScenarioOptions& o) {
  ScopedPolicy pin(policy_spec(o.pin));
  kvdb::DbConfig cfg;
  cfg.num_slots = 2;
  cfg.buckets_per_slot = 4;
  // Heap-allocated for replay stability (see hashmap_schedule).
  const auto db_owner = std::make_unique<kvdb::ShardedDb>(cfg, "check.db");
  kvdb::ShardedDb& db = *db_owner;

  // Numeric keys/values so the history uses the map checker unchanged.
  const auto key_str = [](std::uint64_t k) { return std::to_string(k); };
  const auto val_str = [](std::uint64_t v) { return std::to_string(v); };
  const auto parse = [](const std::string& s) {
    return static_cast<std::uint64_t>(std::strtoull(s.c_str(), nullptr, 10));
  };

  // Same-chain keys (see colliding_kvdb_keys): the churn threads must
  // unlink nodes *ahead of* the sentinel in its own bucket chain for the
  // validated-search hazard to be reachable at all.
  const ChainKeys keys =
      colliding_kvdb_keys(cfg.num_slots, cfg.buckets_per_slot);
  const std::uint64_t kSentinel = keys.sentinel;
  const std::uint64_t kChurnA = keys.churn_a;
  const std::uint64_t kChurnB = keys.churn_b;
  constexpr std::uint64_t kSentinelValue = 7;
  db.set(key_str(kSentinel), val_str(kSentinelValue));

  History hist(3);
  const unsigned ops = o.ops_per_thread;

  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::string out;
      const std::size_t op = hist.invoke(0, OpKind::kGet, kSentinel);
      const bool ok = db.get(key_str(kSentinel), out);
      hist.respond(0, op, ok, ok ? parse(out) : 0);
    }
  });
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::size_t op = hist.invoke(1, OpKind::kSet, kChurnA, 100 + i);
      hist.respond(1, op, db.set(key_str(kChurnA), val_str(100 + i)));
      op = hist.invoke(1, OpKind::kRemove, kChurnA);
      hist.respond(1, op, db.remove(key_str(kChurnA)));
    }
  });
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::string out;
      std::size_t op = hist.invoke(2, OpKind::kGet, kChurnA);
      const bool ok = db.get(key_str(kChurnA), out);
      hist.respond(2, op, ok, ok ? parse(out) : 0);
      op = hist.invoke(2, OpKind::kSet, kChurnB, 200 + i);
      hist.respond(2, op, db.set(key_str(kChurnB), val_str(200 + i)));
      op = hist.invoke(2, OpKind::kRemove, kChurnB);
      hist.respond(2, op, db.remove(key_str(kChurnB)));
    }
  });
  ctx.run_threads(std::move(bodies));

  const LinearizeResult lin =
      check_map_history(hist.merged(), {{kSentinel, kSentinelValue}});
  if (!lin.ok) {
    return "kvdb(" + std::string(to_string(o.pin)) + "): " + lin.explanation;
  }
  return std::nullopt;
}

namespace {

// The rwlock scenario's shared state: four present/value registers behind
// one ElidableSharedLock, with a single ConflictIndicator validating the
// SWOpt read paths. Small enough that every mode's critical section fits
// the emulated HTM capacity; adversarial because the writer mutates the
// same registers the shared- and update-mode readers traverse.
struct RwRegisters {
  explicit RwRegisters(const char* name) : lock(name) {}

  static constexpr std::size_t kSlots = 4;
  struct Slot {
    std::uint64_t present = 0;
    std::uint64_t value = 0;
  };

  ElidableSharedLock<> lock;
  ConflictIndicator ind;
  Slot slots[kSlots];

  bool get_shared(std::uint64_t key, std::uint64_t& out) {
    bool ok = false;
    lock.elide_shared([&](CsExec& cs) -> CsBody {
      Slot& s = slots[key];
      if (cs.in_swopt()) {
        const std::uint64_t v = ind.get_ver(true);
        const std::uint64_t p = tx_load(s.present);
        const std::uint64_t val = tx_load(s.value);
        if (ind.changed_since(v)) return CsBody::kRetrySwOpt;
        ok = p != 0;
        out = val;
        return CsBody::kDone;
      }
      ok = tx_load(s.present) != 0;
      out = tx_load(s.value);
      return CsBody::kDone;
    });
    return ok;
  }

  // Same read, through the update view: tolerated by concurrent readers,
  // serialized against the writer and other updaters.
  bool get_update(std::uint64_t key, std::uint64_t& out) {
    bool ok = false;
    lock.elide_update([&](CsExec& cs) -> CsBody {
      Slot& s = slots[key];
      if (cs.in_swopt()) {
        const std::uint64_t v = ind.get_ver(true);
        const std::uint64_t p = tx_load(s.present);
        const std::uint64_t val = tx_load(s.value);
        if (ind.changed_since(v)) return CsBody::kRetrySwOpt;
        ok = p != 0;
        out = val;
        return CsBody::kDone;
      }
      ok = tx_load(s.present) != 0;
      out = tx_load(s.value);
      return CsBody::kDone;
    });
    return ok;
  }

  // Upsert; reports whether the key was new (the history checker's kSet
  // contract, same as ShardedDb::set).
  bool set_exclusive(std::uint64_t key, std::uint64_t val) {
    bool fresh = false;
    lock.elide_exclusive([&](CsExec&) {
      Slot& s = slots[key];
      fresh = tx_load(s.present) == 0;
      ConflictingAction<LockMd> guard(ind, lock.md());
      tx_store(s.value, val);
      tx_store(s.present, std::uint64_t{1});
    });
    return fresh;
  }

  // Insert through the update view: reads first, writes only when fresh —
  // the "read now, maybe write later" shape update mode exists for. The
  // fallback writes under the upgraded (exclusive) lock; elided attempts
  // tolerate concurrent shared readers.
  bool insert_update(std::uint64_t key, std::uint64_t val) {
    bool fresh = false;
    lock.elide_update([&](CsExec&) {
      Slot& s = slots[key];
      fresh = tx_load(s.present) == 0;
      if (fresh) {
        ConflictingAction<LockMd> guard(ind, lock.md());
        tx_store(s.value, val);
        tx_store(s.present, std::uint64_t{1});
      }
    });
    return fresh;
  }

  bool remove_exclusive(std::uint64_t key) {
    bool was = false;
    lock.elide_exclusive([&](CsExec&) {
      Slot& s = slots[key];
      was = tx_load(s.present) != 0;
      if (was) {
        ConflictingAction<LockMd> guard(ind, lock.md());
        tx_store(s.present, std::uint64_t{0});
      }
    });
    return was;
  }
};

}  // namespace

std::optional<std::string> rwlock_schedule(ScheduleCtx& ctx,
                                           const MapScenarioOptions& o) {
  ScopedPolicy pin(policy_spec(o.pin));
  // Heap-allocated for replay stability (see hashmap_schedule).
  const auto regs_owner = std::make_unique<RwRegisters>("check.rw");
  RwRegisters& regs = *regs_owner;

  constexpr std::uint64_t kSentinel = 0;
  constexpr std::uint64_t kChurnA = 1;
  constexpr std::uint64_t kChurnB = 2;
  constexpr std::uint64_t kSentinelValue = 7;
  regs.slots[kSentinel] = {1, kSentinelValue};  // pre-run, single-threaded

  History hist(3);
  const unsigned ops = o.ops_per_thread;

  std::vector<std::function<void()>> bodies;
  // Shared-mode reader: hammers the always-present sentinel the writer
  // keeps overwriting.
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::uint64_t out = 0;
      const std::size_t op = hist.invoke(0, OpKind::kGet, kSentinel);
      const bool ok = regs.get_shared(kSentinel, out);
      hist.respond(0, op, ok, out);
    }
  });
  // Exclusive writer: rewrites the sentinel and churns a second register.
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::size_t op = hist.invoke(1, OpKind::kSet, kSentinel, 100 + i);
      hist.respond(1, op, regs.set_exclusive(kSentinel, 100 + i));
      op = hist.invoke(1, OpKind::kInsert, kChurnA, 150 + i);
      hist.respond(1, op, regs.insert_update(kChurnA, 150 + i));
      op = hist.invoke(1, OpKind::kRemove, kChurnA);
      hist.respond(1, op, regs.remove_exclusive(kChurnA));
    }
  });
  // Update-mode thread: reads the sentinel through the update view and
  // toggles its own register with upgrading inserts.
  bodies.push_back([&] {
    for (unsigned i = 0; i < ops; ++i) {
      std::uint64_t out = 0;
      std::size_t op = hist.invoke(2, OpKind::kGet, kSentinel);
      const bool ok = regs.get_update(kSentinel, out);
      hist.respond(2, op, ok, out);
      op = hist.invoke(2, OpKind::kInsert, kChurnB, 200 + i);
      hist.respond(2, op, regs.insert_update(kChurnB, 200 + i));
      op = hist.invoke(2, OpKind::kRemove, kChurnB);
      hist.respond(2, op, regs.remove_exclusive(kChurnB));
    }
  });
  ctx.run_threads(std::move(bodies));

  const LinearizeResult lin =
      check_map_history(hist.merged(), {{kSentinel, kSentinelValue}});
  if (!lin.ok) {
    return "rwlock(" + std::string(to_string(o.pin)) + "): " +
           lin.explanation;
  }
  return std::nullopt;
}

std::optional<std::string> counter_schedule(ScheduleCtx& ctx,
                                            unsigned threads, unsigned incs,
                                            const char* policy) {
  ScopedPolicy pin(policy);
  // Distinct use sites: thread 0's scope prohibits HTM (always Lock mode),
  // the others elide HTM-first — the mix lazy subscription breaks.
  static ScopeInfo lock_scope("check.counter.lock", /*has_swopt=*/false,
                              /*allow_htm=*/false);
  static ScopeInfo htm_scope("check.counter.htm", /*has_swopt=*/false,
                             /*allow_htm=*/true);

  // Heap-allocated for replay stability (see hashmap_schedule).
  auto lock = std::make_unique<TatasLock>();
  const auto md_owner = std::make_unique<LockMd>("check.counter");
  LockMd& md = *md_owner;
  std::uint64_t counter = 0;

  std::vector<std::function<void()>> bodies;
  for (unsigned t = 0; t < threads; ++t) {
    const ScopeInfo& scope = t == 0 ? lock_scope : htm_scope;
    bodies.push_back([&, &scope = scope] {
      for (unsigned i = 0; i < incs; ++i) {
        execute_cs(lock_api<TatasLock>(), lock.get(), md, scope,
                   [&](CsExec&) {
                     const std::uint64_t v = tx_load(counter);
                     tx_store(counter, v + 1);
                   });
      }
    });
  }
  ctx.run_threads(std::move(bodies));

  const std::uint64_t expected =
      static_cast<std::uint64_t>(threads) * incs;
  if (counter != expected) {
    return "counter: lost update — expected " + std::to_string(expected) +
           " increments, counted " + std::to_string(counter);
  }
  return std::nullopt;
}

}  // namespace ale::check::scenarios
