// Readers-writer spinlock with writer-preference, plus the "trylockspin"
// acquisition pattern the paper discusses for the Kyoto Cabinet benchmark.
//
// ALE integrates with a readers-writer lock through *two* LockAPI views of
// the same object (see lockapi.hpp):
//   * the write view: acquire = lock(), is_locked = is_locked() (any holder
//     conflicts with an elided writer), and
//   * the read view: acquire = lock_shared(), is_locked = is_write_locked()
//     (concurrent readers do not conflict with an elided reader).
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/backoff.hpp"

namespace ale {

class RwSpinLock {
 public:
  RwSpinLock() = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  // ---- writer side ----

  void lock() noexcept {
    if (try_lock()) return;
    Backoff backoff;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if (s == 0 || s == kWriterWait) {
        if (state_.compare_exchange_weak(s, kWriterHeld,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      // Announce a waiting writer so new readers hold off (writer
      // preference bounds writer starvation under a reader stream).
      if ((s & kWriterWait) == 0) {
        state_.compare_exchange_weak(s, s | kWriterWait,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
      }
      backoff.pause();
    }
  }

  bool try_lock() noexcept {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while (s == 0 || s == kWriterWait) {
      if (state_.compare_exchange_weak(s, kWriterHeld,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void unlock() noexcept {
    state_.store(0, std::memory_order_release);
  }

  // ---- reader side ----

  void lock_shared() noexcept {
    if (try_lock_shared()) return;
    Backoff backoff;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & (kWriterHeld | kWriterWait)) == 0) {
        if (state_.compare_exchange_weak(s, s + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      backoff.pause();
    }
  }

  bool try_lock_shared() noexcept {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & (kWriterHeld | kWriterWait)) == 0) {
      if (state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return true;
      }
    }
    return false;
  }

  void unlock_shared() noexcept {
    state_.fetch_sub(1, std::memory_order_release);
  }

  // ---- trylockspin (Kyoto Cabinet's acquisition idiom, §5) ----
  // One cheap try first; fall back to the spinning slow path. Separated
  // from lock()/lock_shared() so benchmarks can account the try separately.

  void lock_trylockspin() noexcept {
    if (!try_lock()) lock();
  }

  void lock_shared_trylockspin() noexcept {
    if (!try_lock_shared()) lock_shared();
  }

  // ---- predicates ----

  // Any holder at all (readers or writer). An elided *writer* critical
  // section conflicts with both, so this is its subscription predicate.
  bool is_locked() const noexcept {
    return (state_.load(std::memory_order_acquire) & ~kWriterWait) != 0;
  }

  // Writer held. An elided *reader* critical section conflicts only with a
  // writer.
  bool is_write_locked() const noexcept {
    return (state_.load(std::memory_order_acquire) & kWriterHeld) != 0;
  }

  std::uint32_t reader_count() const noexcept {
    return state_.load(std::memory_order_acquire) & kReaderMask;
  }

  const void* subscription_word() const noexcept { return &state_; }

 private:
  static constexpr std::uint32_t kWriterHeld = 1u << 31;
  static constexpr std::uint32_t kWriterWait = 1u << 30;
  static constexpr std::uint32_t kReaderMask = kWriterWait - 1;

  std::atomic<std::uint32_t> state_{0};
};

}  // namespace ale
