// ConflictIndicator (the paper's tblVer) and the §3.3 elision guard.
#include <gtest/gtest.h>

#include "core/ale.hpp"
#include "policy/static_policy.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct ConflictTest : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
  void TearDown() override { set_global_policy(nullptr); }
};

TEST_F(ConflictTest, VersionStartsEven) {
  ConflictIndicator ind;
  EXPECT_EQ(ind.get_ver(false), 0u);
  EXPECT_EQ(ind.get_ver(true), 0u);
}

TEST_F(ConflictTest, BracketChangesVersion) {
  ConflictIndicator ind;
  const auto v = ind.get_ver(true);
  ind.begin_conflicting_action();
  EXPECT_TRUE(ind.changed_since(v));
  EXPECT_EQ(ind.get_ver(false) & 1, 1u);  // odd while inside
  ind.end_conflicting_action();
  EXPECT_EQ(ind.get_ver(false) & 1, 0u);
  EXPECT_TRUE(ind.changed_since(v));  // permanently different
}

TEST_F(ConflictTest, LockModeAlwaysBumps) {
  // In Lock mode the guard must bump even when no SWOpt is running —
  // nothing can abort a lock holder, so elision would be unsound.
  TatasLock lock;
  LockMd md("conflict.lockmode");
  ConflictIndicator ind;
  static ScopeInfo scope("cs");
  const auto before = ind.get_ver(false);
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec& cs) {
    ASSERT_EQ(cs.exec_mode(), ExecMode::kLock);
    ConflictingAction guard(ind, md);
    EXPECT_EQ(ind.get_ver(false) & 1, 1u);
  });
  EXPECT_EQ(ind.get_ver(false), before + 2);
}

TEST_F(ConflictTest, HtmModeElidesWhenNoSwOpt) {
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  TatasLock lock;
  LockMd md("conflict.htmelide");
  ConflictIndicator ind;
  static ScopeInfo scope("cs");
  const auto before = ind.get_ver(false);
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec& cs) {
    ASSERT_EQ(cs.exec_mode(), ExecMode::kHtm);
    ConflictingAction guard(ind, md);
  });
  EXPECT_EQ(ind.get_ver(false), before);  // elided: no increments at all
}

TEST_F(ConflictTest, HtmModeBumpsWhenSwOptPresent) {
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  TatasLock lock;
  LockMd md("conflict.htmbump");
  ConflictIndicator ind;
  static ScopeInfo scope("cs");
  md.swopt_present_arrive();  // simulate a SWOpt execution in flight
  const auto before = ind.get_ver(false);
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec& cs) {
    ASSERT_EQ(cs.exec_mode(), ExecMode::kHtm);
    ConflictingAction guard(ind, md);
  });
  EXPECT_EQ(ind.get_ver(false), before + 2);
  md.swopt_present_depart();
}

TEST_F(ConflictTest, SwOptArrivalAbortsElidingTransaction) {
  // The §3.3 elision safety net: a transaction that read "no SWOpt
  // running" is subscribed to the presence word, so an arrival before its
  // commit aborts it.
  using htm::AbortCause;
  using htm::TxAbortException;
  LockMd md("conflict.racesafe");
  const auto bs = htm::tx_begin();
  ASSERT_EQ(bs.state, htm::BeginState::kStarted);
  AbortCause cause = AbortCause::kNone;
  std::uint64_t data = 0;
  try {
    if (!md.could_swopt_be_running()) {
      // A SWOpt execution arrives between our check and our commit.
      std::thread([&md] { md.swopt_present_arrive(); }).join();
      tx_store(data, std::uint64_t{1});
    }
    htm::tx_commit();
  } catch (const TxAbortException& e) {
    cause = e.cause;
  }
  EXPECT_EQ(cause, AbortCause::kConflict);
  EXPECT_EQ(data, 0u);
  md.swopt_present_depart();
}

TEST_F(ConflictTest, AbortUnwindDoesNotWedgeIndicator) {
  // Regression: an emulated-HTM abort unwinding through a live
  // ConflictingAction guard must not emit the end-increment into real
  // memory (the begin-increment was buffered and died with the redo log);
  // doing so left the indicator odd forever and wedged get_ver(true).
  using htm::AbortCause;
  using htm::TxAbortException;
  LockMd md("conflict.unwind");
  md.swopt_present_arrive();  // gate open: the guard really increments
  ConflictIndicator ind;
  std::uint64_t data = 0;
  AbortCause cause = AbortCause::kNone;
  const auto bs = htm::tx_begin();
  ASSERT_EQ(bs.state, htm::BeginState::kStarted);
  try {
    ConflictingAction guard(ind, md);
    tx_store(data, std::uint64_t{1});
    htm::tx_abort(AbortCause::kConflict);  // unwinds through the guard
  } catch (const TxAbortException& e) {
    cause = e.cause;
  }
  md.swopt_present_depart();
  EXPECT_EQ(cause, AbortCause::kConflict);
  EXPECT_EQ(data, 0u);
  EXPECT_EQ(ind.get_ver(false) & 1, 0u);  // even: reader wait terminates
  EXPECT_EQ(ind.get_ver(true), 0u);       // and indeed untouched
}

TEST_F(ConflictTest, CommitPathStillBracketsCorrectly) {
  // The abort fix must not break the normal transactional path: a
  // committed guard publishes exactly two increments.
  using htm::TxAbortException;
  LockMd md("conflict.commitpath");
  md.swopt_present_arrive();
  ConflictIndicator ind;
  std::uint64_t data = 0;
  const auto bs = htm::tx_begin();
  ASSERT_EQ(bs.state, htm::BeginState::kStarted);
  try {
    {
      ConflictingAction guard(ind, md);
      tx_store(data, std::uint64_t{1});
    }
    htm::tx_commit();
  } catch (const TxAbortException&) {
    FAIL() << "unexpected abort";
  }
  md.swopt_present_depart();
  EXPECT_EQ(data, 1u);
  EXPECT_EQ(ind.get_ver(false), 2u);
}

TEST_F(ConflictTest, GetVerWaitsForEven) {
  ConflictIndicator ind;
  ind.begin_conflicting_action();
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ind.end_conflicting_action();
  });
  const auto v = ind.get_ver(true);  // must block until even
  EXPECT_EQ(v & 1, 0u);
  EXPECT_EQ(v, 2u);
  finisher.join();
}

}  // namespace
}  // namespace ale
