// Facade edge cases and abort-safety properties of the emulated engine.
#include <gtest/gtest.h>

#include "htm/access.hpp"
#include "htm/emulated.hpp"
#include "htm/htm.hpp"
#include "sync/spinlock.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

using htm::AbortCause;
using htm::TxAbortException;

struct FacadeEdges : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
};

TEST_F(FacadeEdges, AbortOutsideTxnStillThrows) {
  EXPECT_FALSE(htm::in_txn());
  bool threw = false;
  try {
    htm::tx_abort(AbortCause::kExplicit, 3);
  } catch (const TxAbortException& e) {
    threw = true;
    EXPECT_EQ(e.cause, AbortCause::kExplicit);
    EXPECT_EQ(e.user_code, 3);
  }
  EXPECT_TRUE(threw);
}

TEST_F(FacadeEdges, CommitOutsideTxnIsNoop) {
  htm::tx_commit();
  SUCCEED();
}

TEST_F(FacadeEdges, SubscribeOutsideTxnIsHarmless) {
  TatasLock lock;
  htm::tx_subscribe_lock(lock_api<TatasLock>(), &lock, false);
  SUCCEED();
}

TEST_F(FacadeEdges, DoubleSubscriptionDedupes) {
  TatasLock lock;
  std::uint64_t x = 0;
  const auto bs = htm::tx_begin();
  ASSERT_EQ(bs.state, htm::BeginState::kStarted);
  AbortCause cause = AbortCause::kNone;
  try {
    htm::tx_subscribe_lock(lock_api<TatasLock>(), &lock, false);
    htm::tx_subscribe_lock(lock_api<TatasLock>(), &lock, false);
    tx_store(x, std::uint64_t{1});
    htm::tx_commit();
  } catch (const TxAbortException& e) {
    cause = e.cause;
  }
  EXPECT_EQ(cause, AbortCause::kNone);
  EXPECT_EQ(x, 1u);
  EXPECT_FALSE(lock.is_locked());  // released exactly once
}

TEST_F(FacadeEdges, OpacityMultiWordInvariantNeverTorn) {
  // A writer maintains a == b inside transactions; readers (also
  // transactional) must never observe a != b — the emulated engine's
  // per-read validation plus commit validation must provide this.
  alignas(64) std::uint64_t a = 0;
  alignas(64) std::uint64_t b = 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  test::run_threads(4, [&](unsigned idx) {
    if (idx == 0) {
      for (int i = 1; i <= 20000; ++i) {
        for (;;) {
          (void)htm::tx_begin();
          try {
            tx_store(a, static_cast<std::uint64_t>(i));
            tx_store(b, static_cast<std::uint64_t>(i));
            htm::tx_commit();
            break;
          } catch (const TxAbortException&) {
          }
        }
      }
      stop.store(true);
      return;
    }
    while (!stop.load(std::memory_order_relaxed)) {
      (void)htm::tx_begin();
      try {
        const std::uint64_t ra = tx_load(a);
        const std::uint64_t rb = tx_load(b);
        htm::tx_commit();
        if (ra != rb) torn.fetch_add(1);
      } catch (const TxAbortException&) {
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(a, 20000u);
  EXPECT_EQ(b, 20000u);
}

TEST_F(FacadeEdges, AbortedWriterLeavesNoPartialState) {
  // Fuzz: random multi-word writes, randomly self-aborted. Memory must
  // reflect only committed transactions (all-or-nothing per txn).
  alignas(64) std::uint64_t cells[8] = {};
  Xoshiro256 rng(5);
  std::uint64_t committed_sum = 0;
  for (int i = 0; i < 3000; ++i) {
    const bool will_abort = rng.next_bool(0.4);
    (void)htm::tx_begin();
    try {
      const unsigned n = 1 + static_cast<unsigned>(rng.next_below(8));
      for (unsigned k = 0; k < n; ++k) {
        auto& c = cells[rng.next_below(8)];
        tx_store(c, tx_load(c) + 1);
      }
      if (will_abort) htm::tx_abort(AbortCause::kExplicit);
      htm::tx_commit();
      committed_sum += n;
    } catch (const TxAbortException&) {
      EXPECT_TRUE(will_abort);
    }
  }
  std::uint64_t actual = 0;
  for (const auto& c : cells) actual += c;
  EXPECT_EQ(actual, committed_sum);
}

TEST_F(FacadeEdges, TxnDescriptorSizesTrack) {
  auto& desc = htm::detail::tls_desc();
  std::uint64_t x = 0, y = 0;
  (void)htm::tx_begin();
  EXPECT_EQ(desc.read_set_size(), 0u);
  EXPECT_EQ(desc.write_set_size(), 0u);
  (void)tx_load(x);
  EXPECT_EQ(desc.read_set_size(), 1u);
  tx_store(y, std::uint64_t{1});
  EXPECT_EQ(desc.write_set_size(), 1u);
  htm::tx_commit();
  EXPECT_FALSE(htm::in_txn());
}

}  // namespace
}  // namespace ale
