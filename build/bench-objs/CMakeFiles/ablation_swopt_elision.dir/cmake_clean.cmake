file(REMOVE_RECURSE
  "../bench/ablation_swopt_elision"
  "../bench/ablation_swopt_elision.pdb"
  "CMakeFiles/ablation_swopt_elision.dir/ablation_swopt_elision.cpp.o"
  "CMakeFiles/ablation_swopt_elision.dir/ablation_swopt_elision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_swopt_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
