# Empty compiler generated dependencies file for ale_kvdb.
# This may be replaced when dependencies are built.
