// Epoch-flushed thread-local stat deltas (core/stat_delta.hpp): deltas are
// invisible while buffered, exact after a quiesce, auto-flushed on
// threshold and slot eviction, and every statistics consumer that iterates
// through LockMd::for_each_granule sees fully flushed totals.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/ale.hpp"
#include "core/stat_delta.hpp"
#include "policy/adaptive_policy.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct StatDeltaTest : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
  void TearDown() override { set_global_policy(nullptr); }

  TatasLock lock;

  void drive(LockMd& md, const ScopeInfo& scope, int n, std::uint64_t& cell) {
    for (int i = 0; i < n; ++i) {
      execute_cs(lock_api<TatasLock>(), &lock, md, scope,
                 [&](CsExec& cs) -> CsBody {
                   if (cs.in_swopt()) {
                     (void)tx_load(cell);
                     return CsBody::kDone;
                   }
                   tx_store(cell, tx_load(cell) + 1);
                   return CsBody::kDone;
                 });
    }
  }

  GranuleMd* only_granule(LockMd& md) {
    GranuleMd* g = nullptr;
    md.for_each_granule([&](GranuleMd& gr) { g = &gr; });
    return g;
  }
};

// Deltas below the flush threshold stay buffered (fold() lags), and a
// quiesce makes the totals exact.
TEST_F(StatDeltaTest, BufferLagsUntilQuiesced) {
  test::PolicyInstaller inst(std::make_unique<LockOnlyPolicy>());
  LockMd md("statdelta.lag");
  static ScopeInfo scope("cs", /*has_swopt=*/false);
  std::uint64_t cell = 0;

  drive(md, scope, 1, cell);
  GranuleMd* g = only_granule(md);
  ASSERT_NE(g, nullptr);  // for_each_granule above also quiesced

  quiesce_statistics();
  const std::uint64_t base = g->stats.fold().executions;

  const int kBelowThreshold =
      static_cast<int>(StatDeltaBuffer::flush_interval()) - 2;
  ASSERT_GT(kBelowThreshold, 0);
  drive(md, scope, kBelowThreshold, cell);
  // No quiesce yet: everything since `base` is still parked in this
  // thread's buffer.
  EXPECT_EQ(g->stats.fold().executions, base);

  quiesce_statistics();
  EXPECT_EQ(g->stats.fold().executions,
            base + static_cast<std::uint64_t>(kBelowThreshold));
}

// Reaching the flush interval drains the buffer without any quiesce.
TEST_F(StatDeltaTest, ThresholdTriggersAutoFlush) {
  test::PolicyInstaller inst(std::make_unique<LockOnlyPolicy>());
  LockMd md("statdelta.threshold");
  static ScopeInfo scope("cs", /*has_swopt=*/false);
  std::uint64_t cell = 0;

  drive(md, scope, 1, cell);
  GranuleMd* g = only_granule(md);
  ASSERT_NE(g, nullptr);
  quiesce_statistics();
  const std::uint64_t base = g->stats.fold().executions;

  const int kOverThreshold =
      static_cast<int>(StatDeltaBuffer::flush_interval()) + 8;
  drive(md, scope, kOverThreshold, cell);
  // At least one automatic flush must have happened.
  EXPECT_GT(g->stats.fold().executions, base);
}

// A buffer juggling more granules than it has slots evicts-by-flushing, so
// early granules' deltas become visible when the working set moves on.
TEST_F(StatDeltaTest, SlotEvictionFlushes) {
  static_assert(StatDeltaBuffer::kSlots == 4);
  test::PolicyInstaller inst(std::make_unique<LockOnlyPolicy>());
  LockMd md("statdelta.evict");
  quiesce_statistics();

  // Distinct granules via distinct explicit scopes (one granule per call
  // context). kSlots + 1 of them forces an eviction cycle.
  static ScopeInfo scopes[] = {
      ScopeInfo("s0", false), ScopeInfo("s1", false), ScopeInfo("s2", false),
      ScopeInfo("s3", false), ScopeInfo("s4", false)};
  std::uint64_t cell = 0;
  for (const ScopeInfo& s : scopes) drive(md, s, 1, cell);

  // Filling the fifth slot flushed the whole buffer and re-buffered only
  // the newest granule: the first four must be visible with no quiesce
  // (granule_for bypasses the for_each_granule chokepoint), the fifth
  // still parked in the buffer.
  for (unsigned i = 0; i < StatDeltaBuffer::kSlots; ++i) {
    GranuleMd& g = md.granule_for(context_root().child(&scopes[i]));
    EXPECT_EQ(g.stats.fold().executions, 1u) << "scope s" << i;
  }
  GranuleMd& last = md.granule_for(context_root().child(&scopes[4]));
  EXPECT_EQ(last.stats.fold().executions, 0u);
  quiesce_statistics();
  EXPECT_EQ(last.stats.fold().executions, 1u);
}

// The chokepoint: every consumer reading through for_each_granule (reports,
// snapshots, policy transitions) sees exact totals with no explicit
// quiesce, because the iteration itself force-flushes.
TEST_F(StatDeltaTest, ForEachGranuleSeesExactTotals) {
  test::PolicyInstaller inst(std::make_unique<LockOnlyPolicy>());
  LockMd md("statdelta.foreach");
  static ScopeInfo scope("cs", /*has_swopt=*/false);
  std::uint64_t cell = 0;
  constexpr int kN = 37;  // below the flush interval: purely buffered
  quiesce_statistics();
  drive(md, scope, kN, cell);

  std::uint64_t execs = 0, lock_succ = 0;
  md.for_each_granule([&](GranuleMd& g) {
    const GranuleTotals t = g.stats.fold();
    execs += t.executions;
    lock_succ += t.of(ExecMode::kLock).successes;
  });
  EXPECT_EQ(execs, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(lock_succ, static_cast<std::uint64_t>(kN));
}

// AdaptivePolicy phase transitions walk for_each_granule and therefore
// learn from flushed totals: after exactly phase_len executions the policy
// must have advanced out of the measure-Lock phase — impossible if the
// transition had read stale (buffered) statistics.
TEST_F(StatDeltaTest, AdaptiveTransitionSeesFlushedTotals) {
  AdaptiveConfig cfg;
  cfg.phase_len = 50;
  auto policy = std::make_unique<AdaptivePolicy>(cfg);
  AdaptivePolicy* p = policy.get();
  test::PolicyInstaller inst(std::move(policy));

  LockMd md("statdelta.adaptive");
  static ScopeInfo scope("cs", /*has_swopt=*/true);
  std::uint64_t cell = 0;
  drive(md, scope, 2000, cell);
  EXPECT_TRUE(p->converged(md));

  // And the learning inputs the transition read were complete: totals are
  // exact across the whole run (every execution counted, none lost in a
  // buffer during the phase walk; post-convergence plan sampling keeps
  // counts unbiased but no longer exact, so bound instead of equate).
  std::uint64_t execs = 0;
  md.for_each_granule(
      [&](GranuleMd& g) { execs += g.stats.fold().executions; });
  EXPECT_GT(execs, 1000u);
}

// 8 threads hammering commits against a shared granule while the main
// thread quiesces concurrently — the TSan case for the buffer registry,
// per-buffer locks, and remote drain.
TEST_F(StatDeltaTest, ConcurrentCommitAndQuiesce) {
  test::PolicyInstaller inst(std::make_unique<LockOnlyPolicy>());
  LockMd md("statdelta.hammer");
  static ScopeInfo scope("cs", /*has_swopt=*/false);
  constexpr unsigned kThreads = 8;
  // 8·63 = 504 < 512: even if every delta drains onto one stripe (the
  // quiescer applies remote deltas to its own stripe), each counter stays
  // in the exact BFP regime, so the final fold must be exact.
  constexpr int kPer = 63;

  std::atomic<bool> stop{false};
  std::thread quiescer([&] {
    while (!stop.load(std::memory_order_relaxed)) quiesce_statistics();
  });
  test::run_threads(kThreads, [&](unsigned) {
    std::uint64_t local = 0;
    drive(md, scope, kPer, local);
  });
  stop.store(true, std::memory_order_relaxed);
  quiescer.join();

  // Worker threads exited, so their buffers flushed on destruction.
  std::uint64_t execs = 0;
  md.for_each_granule(
      [&](GranuleMd& g) { execs += g.stats.fold().executions; });
  EXPECT_EQ(execs, static_cast<std::uint64_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace ale
