// Small, fast pseudo-random number generators.
//
// ALE uses randomness on hot paths (3% sampling of timing events, BFP
// counter update probabilities, emulated-HTM quirk injection, workload
// generators). std::mt19937 is too heavy and not per-thread by default; we
// use SplitMix64 for seeding and xoshiro256** for generation — both are
// public-domain algorithms with excellent statistical quality.
#pragma once

#include <cstdint>

namespace ale {

// SplitMix64: used to expand a single seed into stream state. Also a decent
// standalone generator for deterministic tests.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Rejection-free (tiny modulo bias is irrelevant
  // for sampling/workload purposes; bounds here are << 2^32).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  // Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

// Per-thread generator seeded from the thread id; cheap to access and never
// shared, so no synchronization is needed.
Xoshiro256& thread_prng() noexcept;

// ---- run-seed reproducibility ----
//
// Every source of pseudo-randomness in an ALE process (per-thread PRNGs,
// bench workload generators, the stress runner, fault injection) derives
// from one run seed so an entire run can be replayed: set ALE_SEED (decimal
// or 0x-hex) and re-run the same binary. When ALE_SEED is unset the
// historical default seed is used, so unseeded runs behave exactly as
// before this knob existed. Report headers print the value via
// run_seed() so it can be copied into a reproduction.
std::uint64_t run_seed() noexcept;

// Programmatic override (stress/test harnesses). Only affects PRNGs created
// after the call — call it before spawning worker threads.
void set_run_seed(std::uint64_t seed) noexcept;

// Derive an independent stream seed from the run seed: mixes `salt` (and
// optionally more salts) through SplitMix64 so distinct consumers get
// decorrelated, deterministic streams.
std::uint64_t derive_seed(std::uint64_t salt) noexcept;
std::uint64_t derive_seed(std::uint64_t salt_a, std::uint64_t salt_b) noexcept;

}  // namespace ale
