// The Kyoto Cabinet "wicked" benchmark analog (§5, Figure 5) as a tool:
// a ShardedDb (method RW lock + slot locks, ALE-enabled and nested) under
// a randomized mixed workload, or the paper's `nomutate` variant.
//
// The method-level readers-writer lock is an ale::ElidableSharedLock:
// record methods elide through the shared view (trylockspin acquisition
// per DbConfig), whole-DB methods through the exclusive view, and the
// report at the end shows the per-mode granules under "kcdb.methodLock".
// See examples/readers_writer.cpp for the front-door API in isolation.
//
//   usage: kyoto_wicked [threads] [seconds] [nomutate(0|1)] [key-range]
//   env:   ALE_POLICY, ALE_HTM_BACKEND, ALE_HTM_PROFILE, ALE_TELEMETRY
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "kvdb/wicked.hpp"
#include "policy/install.hpp"
#include "policy/static_policy.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  const unsigned threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;
  const bool nomutate = argc > 3 && std::atoi(argv[3]) != 0;
  const std::uint64_t key_range = argc > 4 ? std::atoll(argv[4]) : 10000;

  ale::telemetry::init_from_env();
  if (!ale::install_policy_from_env()) {
    ale::set_global_policy(std::make_unique<ale::StaticPolicy>(
        ale::StaticPolicyConfig{.x = 5, .y = 5}));
  }

  ale::kvdb::ShardedDb db;
  ale::kvdb::WickedConfig cfg;
  cfg.key_range = key_range;
  cfg.nomutate = nomutate;
  ale::kvdb::wicked_prefill(db, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_ops{0};
  std::array<std::atomic<std::uint64_t>, ale::kvdb::kNumWickedOps> histo{};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ale::Xoshiro256 rng(t * 131 + 7);
      std::string k, v;
      std::uint64_t ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto op = ale::kvdb::wicked_step(db, cfg, rng, k, v);
        histo[static_cast<std::size_t>(op)].fetch_add(
            1, std::memory_order_relaxed);
        ++ops;
      }
      total_ops.fetch_add(ops);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& w : workers) w.join();

  std::printf("wicked%s threads=%u policy=%s profile=%s\n",
              nomutate ? " (nomutate)" : "", threads,
              ale::global_policy().name(), ale::htm::config().profile.name);
  std::printf("throughput: %.0f ops/s, db count=%llu\n",
              static_cast<double>(total_ops.load()) / seconds,
              static_cast<unsigned long long>(db.count()));
  for (std::size_t i = 0; i < histo.size(); ++i) {
    const auto n = histo[i].load();
    if (n > 0) {
      std::printf("  %-9s %llu\n",
                  ale::kvdb::to_string(static_cast<ale::kvdb::WickedOp>(i)),
                  static_cast<unsigned long long>(n));
    }
  }
  std::printf("\n--- ALE report ---\n");
  ale::print_report(std::cout);
  if (ale::telemetry::active()) ale::telemetry::shutdown();
  return 0;
}
