// Quickstart: ALE in ~60 lines.
//
// A shared counter protected by one lock; ALE elides the lock via HTM
// (emulated by default — set ALE_HTM_BACKEND/ALE_HTM_PROFILE to change),
// and the report at the end shows per-(lock, context) statistics.
//
//   $ ./quickstart
//   $ ALE_POLICY=adaptive ALE_HTM_PROFILE=rock ./quickstart
//   $ ALE_TELEMETRY=json:- ./quickstart     # JSON metrics dump to stdout
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "core/ale.hpp"
#include "policy/install.hpp"
#include "policy/static_policy.hpp"
#include "telemetry/telemetry.hpp"

int main() {
  // Telemetry: ALE_TELEMETRY env var, e.g. json:/tmp/ale.json,500.
  ale::telemetry::init_from_env();
  // Policy: ALE_POLICY env var if set, else Static-All-5:3.
  if (!ale::install_policy_from_env()) {
    ale::set_global_policy(std::make_unique<ale::StaticPolicy>(
        ale::StaticPolicyConfig{.x = 5, .y = 3}));
  }

  // 1. An ALE-enabled lock: lock + metadata ("label") in one object.
  ale::ElidableLock<> lock("quickstart.lock");

  // 2. Shared data, accessed via tx_load/tx_store inside critical sections.
  alignas(64) std::uint64_t counter = 0;

  // 3. Critical sections via elide(): the scope (§3.4) is minted from the
  //    call site automatically; name it explicitly with the
  //    elide(ScopeInfo, body) overload when reports should say more than
  //    "quickstart.cpp:NN".
  static ale::ScopeInfo scope("increment");

  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        lock.elide(scope, [&](ale::CsExec&) {
          ale::tx_store(counter, ale::tx_load(counter) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  std::printf("counter = %llu (expected %llu)\n",
              static_cast<unsigned long long>(counter),
              static_cast<unsigned long long>(kThreads) * kPerThread);
  std::printf("policy  = %s, backend = %s, profile = %s\n",
              ale::global_policy().name(),
              ale::htm::to_string(ale::htm::config().backend),
              ale::htm::config().profile.name);
  std::printf("\n--- ALE report ---\n");
  ale::print_report(std::cout);
  // Flush the ALE_TELEMETRY dump while the lock's metadata is still
  // registered (the atexit hook would run after this stack frame is gone
  // and report the lock as "<dead>").
  if (ale::telemetry::active()) ale::telemetry::shutdown();
  return counter == kThreads * static_cast<std::uint64_t>(kPerThread) ? 0 : 1;
}
