// Global versioned-lock table and version clock for the emulated HTM
// backend (TL2-style).
//
// Every shared address maps (by cache line, mirroring real HTM conflict
// granularity) to one of 2^16 slots. A slot packs (version << 1) | locked.
// Emulated transactions validate reads against slots and lock the slots of
// their write set at commit; non-transactional writers (Lock-mode critical
// sections) bump slot versions through a short slot-lock bracket so
// concurrent transactions observe their interference. The version clock is
// the TL2 global clock: a transaction's read snapshot rv is the clock at
// begin, and any slot version > rv means the datum changed since.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"

namespace ale::htm::detail {

class VersionTable {
 public:
  static constexpr std::size_t kLogSlots = 16;
  static constexpr std::size_t kNumSlots = std::size_t{1} << kLogSlots;

  // The process-wide table. A constinit static member (zero-initialized
  // atomics) rather than a guarded function-local singleton: slot_for and
  // the clock are on the emulated begin/read/commit hot path, and the
  // Meyers-singleton guard load per access was measurable. Never destroyed
  // in any meaningful sense — all members are trivially destructible — so
  // detached-thread teardown may touch it at any point.
  static VersionTable& instance() noexcept { return g_instance; }

  std::atomic<std::uint64_t>& slot_for(const void* addr) noexcept {
    return slots_[slot_index(addr)];
  }

  static std::size_t slot_index(const void* addr) noexcept {
    // Fibonacci hash of the cache-line index: adjacent lines spread out.
    const std::uint64_t line = cache_line_of(addr);
    return static_cast<std::size_t>((line * 0x9e3779b97f4a7c15ULL) >>
                                    (64 - kLogSlots));
  }

  std::atomic<std::uint64_t>& clock() noexcept { return clock_; }

  std::uint64_t next_write_version() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  std::uint64_t read_clock() const noexcept {
    return clock_.load(std::memory_order_acquire);
  }

  // ---- slot word encoding ----
  static constexpr bool locked(std::uint64_t s) noexcept { return s & 1; }
  static constexpr std::uint64_t version_of(std::uint64_t s) noexcept {
    return s >> 1;
  }
  static constexpr std::uint64_t pack(std::uint64_t version,
                                      bool is_locked) noexcept {
    return (version << 1) | (is_locked ? 1 : 0);
  }

 private:
  constexpr VersionTable() = default;

  static VersionTable g_instance;

  std::atomic<std::uint64_t> slots_[kNumSlots]{};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> clock_{0};
};

}  // namespace ale::htm::detail
