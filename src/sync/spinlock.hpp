// Test-and-test-and-set spinlock with exponential backoff.
//
// This is the default lock for ALE-enabled critical sections: it exposes the
// three operations the paper's LockAPI requires — acquire, release, and the
// is_locked predicate that HTM mode uses to subscribe to the lock.
#pragma once

#include <atomic>

#include "sync/backoff.hpp"

namespace ale {

class TatasLock {
 public:
  TatasLock() = default;
  TatasLock(const TatasLock&) = delete;
  TatasLock& operator=(const TatasLock&) = delete;

  void lock() noexcept {
    if (try_lock()) return;
    Backoff backoff;
    for (;;) {
      while (word_.load(std::memory_order_relaxed) != 0) backoff.pause();
      if (word_.exchange(1, std::memory_order_acquire) == 0) return;
    }
  }

  bool try_lock() noexcept {
    return word_.load(std::memory_order_relaxed) == 0 &&
           word_.exchange(1, std::memory_order_acquire) == 0;
  }

  void unlock() noexcept { word_.store(0, std::memory_order_release); }

  // HTM lock subscription reads this inside the transaction: any writer that
  // acquires the lock will invalidate the transaction's read of word_.
  bool is_locked() const noexcept {
    return word_.load(std::memory_order_acquire) != 0;
  }

  // Address of the lock word, for emulated-HTM read-set subscription.
  const void* subscription_word() const noexcept { return &word_; }

 private:
  std::atomic<std::uint32_t> word_{0};
};

}  // namespace ale
