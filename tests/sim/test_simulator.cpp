// Platform simulator: determinism, conservation, and shape sanity.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace ale::sim {
namespace {

TEST(SimModel, PlatformPresets) {
  EXPECT_TRUE(rock_platform().htm);
  EXPECT_TRUE(haswell_platform().htm);
  EXPECT_FALSE(t2_platform().htm);
  EXPECT_EQ(rock_platform().hw_threads, 16u);
  EXPECT_EQ(haswell_platform().hw_threads, 8u);
  EXPECT_EQ(t2_platform().hw_threads, 128u);
  EXPECT_LT(rock_platform().htm_write_cap, haswell_platform().htm_write_cap);
}

TEST(SimModel, PolicyLabels) {
  EXPECT_EQ(SimPolicy::lock_only().label(), "Instrumented");
  EXPECT_EQ(SimPolicy::static_hl(5).label(), "Static-HL-5");
  EXPECT_EQ(SimPolicy::static_sl(3).label(), "Static-SL-3");
  EXPECT_EQ(SimPolicy::static_all(10, 10).label(), "Static-All-10:10");
  EXPECT_EQ(SimPolicy::adaptive().label(), "Adaptive-All");
}

TEST(SimModel, WorkloadDerivation) {
  const auto sparse = hashmap_workload(0.2, 1000, 1024);
  const auto dense = hashmap_workload(0.2, 100000, 1024);
  EXPECT_GT(dense.cs_cycles, sparse.cs_cycles);  // longer chains
  const auto small_range = hashmap_workload(0.2, 16, 1024);
  EXPECT_GT(small_range.data_conflict_prob, sparse.data_conflict_prob);
  EXPECT_EQ(wicked_workload(true).mutate_frac, 0.0);
  EXPECT_GT(wicked_workload(false).mutate_frac, 0.0);
}

TEST(Simulator, DeterministicForSeed) {
  const auto w = hashmap_workload(0.2, 4096, 1024);
  const auto r1 =
      simulate(haswell_platform(), w, SimPolicy::static_all(5, 3), 4, 7, 20000);
  const auto r2 =
      simulate(haswell_platform(), w, SimPolicy::static_all(5, 3), 4, 7, 20000);
  EXPECT_EQ(r1.ops, r2.ops);
  EXPECT_DOUBLE_EQ(r1.virtual_cycles, r2.virtual_cycles);
  EXPECT_EQ(r1.htm_success, r2.htm_success);
}

TEST(Simulator, ConservationOfOperations) {
  const auto w = hashmap_workload(0.3, 4096, 1024);
  const auto r =
      simulate(rock_platform(), w, SimPolicy::static_all(5, 3), 8, 3, 20000);
  EXPECT_GE(r.ops, 20000u);
  EXPECT_EQ(r.ops, r.htm_success + r.swopt_success + r.lock_success);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(Simulator, LockOnlyUsesOnlyLock) {
  const auto w = hashmap_workload(0.3, 4096, 1024);
  const auto r =
      simulate(rock_platform(), w, SimPolicy::lock_only(), 8, 3, 10000);
  EXPECT_EQ(r.htm_success, 0u);
  EXPECT_EQ(r.swopt_success, 0u);
  EXPECT_EQ(r.lock_success, r.ops);
}

TEST(Simulator, NoHtmPlatformNeverCommitsHtm) {
  const auto w = hashmap_workload(0.3, 4096, 1024);
  const auto r =
      simulate(t2_platform(), w, SimPolicy::static_all(5, 3), 16, 3, 10000);
  EXPECT_EQ(r.htm_success, 0u);
  EXPECT_GT(r.swopt_success, 0u);
}

TEST(Simulator, ThreadsClampedToPlatform) {
  const auto w = hashmap_workload(0.1, 4096, 1024);
  const auto r = simulate(haswell_platform(), w, SimPolicy::static_hl(5),
                          64 /* > 8 hw */, 3, 10000);
  EXPECT_GT(r.ops, 0u);
}

// ---- shape properties the paper's figures rely on ----

double tp(const SimPlatform& p, const SimWorkload& w, const SimPolicy& pol,
          unsigned n, std::uint64_t ops = 30000) {
  return simulate(p, w, pol, n, 42, ops).throughput;
}

TEST(SimulatorShape, ElisionScalesLockDoesNot) {
  const auto w = hashmap_workload(0.1, 4096, 1024);
  const auto p = haswell_platform();
  const double lock1 = tp(p, w, SimPolicy::lock_only(), 1);
  const double lock8 = tp(p, w, SimPolicy::lock_only(), 8);
  const double htm1 = tp(p, w, SimPolicy::static_hl(5), 1);
  const double htm8 = tp(p, w, SimPolicy::static_hl(5), 8);
  EXPECT_GT(htm8 / htm1, 3.0);          // TLE scales
  EXPECT_LT(lock8 / lock1, htm8 / htm1);  // the lock serializes
  EXPECT_GT(htm8, lock8 * 1.5);         // and loses at 8 threads
}

TEST(SimulatorShape, SwOptWinsReadHeavyOnT2) {
  const auto w = hashmap_workload(0.02, 4096, 1024);  // read-heavy
  const auto p = t2_platform();
  const double sl32 = tp(p, w, SimPolicy::static_sl(3), 32);
  const double lock32 = tp(p, w, SimPolicy::lock_only(), 32);
  EXPECT_GT(sl32, lock32 * 2.0);
}

TEST(SimulatorShape, HtmToleratesMutationsBetterThanSwOpt) {
  // Mutation-heavy workload on an HTM platform: HL must beat SL.
  const auto w = hashmap_workload(0.8, 4096, 1024);
  const auto p = haswell_platform();
  const double hl8 = tp(p, w, SimPolicy::static_hl(5), 8);
  const double sl8 = tp(p, w, SimPolicy::static_sl(3), 8);
  EXPECT_GT(hl8, sl8);
}

TEST(SimulatorShape, RockCapacityHurtsBigFootprints) {
  auto w = hashmap_workload(0.5, 4096, 1024);
  w.cs_footprint_lines = 32;  // above Rock's store-queue cap, below Haswell's
  const double rock = tp(rock_platform(), w, SimPolicy::static_hl(5), 8);
  const double rock_lock = tp(rock_platform(), w, SimPolicy::lock_only(), 8);
  // Every mutating transaction capacity-aborts: HL degenerates to ~Lock.
  EXPECT_LT(rock, rock_lock * 1.6);
}

TEST(SimulatorShape, AdaptiveCompetitiveWithBestStatic) {
  const auto p = haswell_platform();
  for (const double mutate : {0.02, 0.5}) {
    const auto w = hashmap_workload(mutate, 4096, 1024);
    const double best = std::max({tp(p, w, SimPolicy::static_hl(5), 8),
                                  tp(p, w, SimPolicy::static_sl(3), 8),
                                  tp(p, w, SimPolicy::static_all(5, 3), 8),
                                  tp(p, w, SimPolicy::lock_only(), 8)});
    const double adaptive = tp(p, w, SimPolicy::adaptive(), 8);
    EXPECT_GT(adaptive, 0.7 * best) << "mutate=" << mutate;
  }
}

TEST(SimulatorShape, AdaptiveConvergesToSensibleProgression) {
  // Read-heavy on T2 (no HTM): adaptive should pick a SWOpt progression.
  const auto w = hashmap_workload(0.02, 4096, 1024);
  const auto r =
      simulate(t2_platform(), w, SimPolicy::adaptive(), 32, 11, 30000);
  EXPECT_EQ(r.adaptive_final_progression, 1u);  // SWOpt+Lock
  // Mutation-heavy on Haswell: adaptive should keep HTM in the mix.
  const auto w2 = hashmap_workload(0.8, 4096, 1024);
  const auto r2 =
      simulate(haswell_platform(), w2, SimPolicy::adaptive(), 8, 11, 30000);
  EXPECT_TRUE(r2.adaptive_final_progression == 2u ||
              r2.adaptive_final_progression == 3u);
  EXPECT_GE(r2.adaptive_final_x, 1u);
}

}  // namespace
}  // namespace ale::sim
