#include <gtest/gtest.h>

#include "htm/config.hpp"
#include "htm/htm.hpp"
#include "htm/rtm.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

TEST(HtmConfig, ProfileLookup) {
  EXPECT_TRUE(htm::profile_by_name("ideal").has_value());
  EXPECT_TRUE(htm::profile_by_name("rock").has_value());
  EXPECT_TRUE(htm::profile_by_name("haswell").has_value());
  EXPECT_TRUE(htm::profile_by_name("t2").has_value());
  EXPECT_TRUE(htm::profile_by_name("none").has_value());
  EXPECT_FALSE(htm::profile_by_name("vax").has_value());
}

TEST(HtmConfig, ProfileShapes) {
  const auto rock = htm::rock_profile();
  const auto haswell = htm::haswell_profile();
  const auto t2 = htm::t2_profile();
  EXPECT_TRUE(rock.htm_available);
  EXPECT_TRUE(haswell.htm_available);
  EXPECT_FALSE(t2.htm_available);
  // Rock's store queue is far smaller than Haswell's L1-backed write set.
  EXPECT_LT(rock.write_cap_lines, haswell.write_cap_lines);
  // Rock is quirkier than Haswell.
  EXPECT_GT(rock.abort_prob_per_access, haswell.abort_prob_per_access);
}

TEST(HtmConfig, NoneBackendReportsUnavailable) {
  htm::Config c;
  c.backend = htm::BackendKind::kNone;
  htm::configure(c);
  EXPECT_FALSE(htm::htm_available());
  const auto bs = htm::tx_begin();
  EXPECT_EQ(bs.state, htm::BeginState::kUnavailable);
  test::use_emulated_ideal();
}

TEST(HtmConfig, T2ProfileDisablesHtm) {
  test::use_no_htm();
  EXPECT_FALSE(htm::htm_available());
  EXPECT_EQ(htm::tx_begin().state, htm::BeginState::kUnavailable);
  test::use_emulated_ideal();
  EXPECT_TRUE(htm::htm_available());
}

TEST(HtmConfig, BackendNames) {
  EXPECT_STREQ(htm::to_string(htm::BackendKind::kNone), "none");
  EXPECT_STREQ(htm::to_string(htm::BackendKind::kEmulated), "emulated");
  EXPECT_STREQ(htm::to_string(htm::BackendKind::kRtm), "rtm");
}

TEST(HtmConfig, AbortCauseNames) {
  EXPECT_STREQ(htm::to_string(htm::AbortCause::kConflict), "conflict");
  EXPECT_STREQ(htm::to_string(htm::AbortCause::kCapacity), "capacity");
  EXPECT_STREQ(htm::to_string(htm::AbortCause::kLockedByOther), "locked");
}

TEST(HtmConfig, RtmFallsBackWhenUnusable) {
  htm::Config c;
  c.backend = htm::BackendKind::kRtm;
  htm::configure(c);
  if (!htm::rtm::supported_at_runtime()) {
    EXPECT_EQ(htm::config().backend, htm::BackendKind::kEmulated);
  } else {
    EXPECT_EQ(htm::config().backend, htm::BackendKind::kRtm);
  }
  test::use_emulated_ideal();
}

TEST(RtmStatusMapping, DecodesBits) {
  std::uint8_t code = 0;
  EXPECT_EQ(htm::map_rtm_status(htm::rtm::kStatusConflict, &code),
            htm::AbortCause::kConflict);
  EXPECT_EQ(htm::map_rtm_status(htm::rtm::kStatusCapacity, &code),
            htm::AbortCause::kCapacity);
  // Explicit with the lock code.
  const unsigned locked_status =
      htm::rtm::kStatusExplicit | (htm::rtm::kAbortCodeLocked << 24);
  if (htm::rtm::compiled_in()) {
    EXPECT_EQ(htm::map_rtm_status(locked_status, &code),
              htm::AbortCause::kLockedByOther);
  }
  EXPECT_EQ(htm::map_rtm_status(0, &code), htm::AbortCause::kEnvironmental);
}

}  // namespace
}  // namespace ale
