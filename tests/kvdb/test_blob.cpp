#include <gtest/gtest.h>

#include "kvdb/blob.hpp"

namespace ale::kvdb {
namespace {

TEST(Blob, MakeAndView) {
  Blob* b = Blob::make("hello world");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->view(), "hello world");
  EXPECT_EQ(b->size(), 11u);
  Blob::destroy(b);
}

TEST(Blob, EmptyString) {
  Blob* b = Blob::make("");
  EXPECT_EQ(b->view(), "");
  EXPECT_EQ(b->size(), 0u);
  EXPECT_TRUE(b->equals(""));
  EXPECT_FALSE(b->equals("x"));
  Blob::destroy(b);
}

TEST(Blob, Equals) {
  Blob* b = Blob::make("abc");
  EXPECT_TRUE(b->equals("abc"));
  EXPECT_FALSE(b->equals("abd"));
  EXPECT_FALSE(b->equals("ab"));
  EXPECT_FALSE(b->equals("abcd"));
  Blob::destroy(b);
}

TEST(Blob, BinaryContent) {
  const char raw[] = {'\0', '\x7f', '\n', '\0', 'x'};
  const std::string_view sv(raw, sizeof(raw));
  Blob* b = Blob::make(sv);
  EXPECT_EQ(b->view(), sv);
  EXPECT_TRUE(b->equals(sv));
  Blob::destroy(b);
}

TEST(Blob, LargeContent) {
  const std::string big(1 << 16, 'z');
  Blob* b = Blob::make(big);
  EXPECT_EQ(b->view(), big);
  Blob::destroy(b);
}

TEST(Blob, DestroyNullIsSafe) {
  Blob::destroy(nullptr);
  SUCCEED();
}

TEST(Blob, RetireLinkStartsNull) {
  Blob* b = Blob::make("x");
  EXPECT_EQ(b->next_retired, nullptr);
  Blob::destroy(b);
}

}  // namespace
}  // namespace ale::kvdb
