// CPU-level primitives: spin-wait hint and RTM feature detection.
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ale {

// Polite spin-wait hint (PAUSE on x86, YIELD elsewhere). Used inside all
// spin loops so hyperthread siblings and the memory pipeline are not
// hammered while waiting.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Runtime check for Intel RTM (Restricted Transactional Memory) support.
// CPUID.07H:EBX.RTM[bit 11]. Returns false on non-x86 builds.
bool cpu_has_rtm() noexcept;

}  // namespace ale
