// Sequence lock (seqlock) [Corbet '03, Lameter '05].
//
// The paper's software-optimistic (SWOpt) mode detects interference with a
// seqlock variant: a sequence number that is even while no conflicting
// action is in progress. Readers snapshot an even value, read optimistically,
// and re-check; writers make the value odd for the duration of the
// conflicting region. ALE's ConflictIndicator (core/) builds on this class,
// adding transactional increments for HTM mode.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/backoff.hpp"

namespace ale {

class SeqLock {
 public:
  SeqLock() = default;
  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  // -- writer protocol --

  // Enter a conflicting region: sequence becomes odd.
  void write_begin() noexcept {
    seq_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Leave a conflicting region: sequence becomes even again (and differs
  // from every snapshot taken before write_begin()).
  void write_end() noexcept {
    seq_.fetch_add(1, std::memory_order_release);
  }

  // -- reader protocol --

  // Snapshot the sequence; if `wait_even`, spin until no writer is inside a
  // conflicting region (paper's GetVer(true)). Backs off while waiting so a
  // descheduled writer can finish on an oversubscribed host.
  std::uint64_t read_begin(bool wait_even = true) const noexcept {
    Backoff backoff;
    for (;;) {
      const std::uint64_t s = seq_.load(std::memory_order_acquire);
      if (!wait_even || (s & 1) == 0) return s;
      backoff.pause();
    }
  }

  // True iff no conflicting region began since the snapshot; pairs with
  // the paper's `v != GetVer(false)` checks.
  bool validate(std::uint64_t snapshot) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) == snapshot;
  }

  std::uint64_t raw() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }

  bool write_active() const noexcept { return (raw() & 1) != 0; }

 private:
  std::atomic<std::uint64_t> seq_{0};
};

// RAII writer bracket for a conflicting region.
class SeqLockWriteGuard {
 public:
  explicit SeqLockWriteGuard(SeqLock& sl) noexcept : sl_(sl) {
    sl_.write_begin();
  }
  ~SeqLockWriteGuard() { sl_.write_end(); }
  SeqLockWriteGuard(const SeqLockWriteGuard&) = delete;
  SeqLockWriteGuard& operator=(const SeqLockWriteGuard&) = delete;

 private:
  SeqLock& sl_;
};

}  // namespace ale
