// ale::check scheduler — cooperative serialized execution of N threads
// under a deterministic schedule.
//
// run_schedule() spawns the given thread bodies, then serializes them: at
// any instant exactly one controlled thread runs, and control only moves at
// scheduling points (check/sched_point.hpp). Which thread runs next is
// decided by a strategy:
//
//   kRandom      uniform choice among runnable threads at every preemption
//                point, from a per-schedule PRNG — cheap, surprisingly
//                effective for shallow races.
//   kPct         probabilistic concurrency testing [Burckhardt et al.,
//                ASPLOS'10]: threads get random priorities, the highest
//                runnable priority always runs, and d randomly placed
//                change points demote the running thread. Finds any bug of
//                depth d with probability ≥ 1/(n·k^(d-1)) per schedule.
//   kExhaustive  preemption-bounded depth-first enumeration [Musuvathi &
//                Qadeer, PLDI'07]: replays a recorded choice prefix and
//                branches on the first unexplored choice, bounding the
//                number of *involuntary* switches per schedule. DfsState
//                carries the frontier from one schedule to the next.
//
// All strategies derive every random decision from SchedulerOptions::seed,
// so a (seed, schedule-index) pair replays the same interleaving — the
// foundation of the one-line repro the explorer prints.
//
// Liveness: spin loops funnel through yield_spin (Backoff::pause, the SNZI
// depart handshake), which forces a switch to another runnable thread, so
// serialization cannot livelock on a spinning waiter. A hook-evaluation
// budget (max_steps) backstops genuine livelocks and schedule-space
// explosions: when exhausted, the run degrades to free-running threads
// (every thread released, hooks become no-ops) and reports it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ale::check {

enum class Strategy : std::uint8_t { kRandom = 0, kPct = 1, kExhaustive = 2 };

const char* to_string(Strategy s) noexcept;
std::optional<Strategy> strategy_by_name(std::string_view name) noexcept;

struct SchedulerOptions {
  Strategy strategy = Strategy::kRandom;
  std::uint64_t seed = 1;

  // kPct: number of priority-change points (the bug-depth parameter d-1)
  // and the step-count estimate their positions are sampled over.
  std::uint32_t pct_change_points = 3;
  std::uint64_t pct_expected_steps = 4096;

  // kExhaustive: maximum involuntary context switches per schedule.
  std::uint32_t preemption_bound = 2;

  // Hook-evaluation budget; exhausting it releases all threads to run
  // freely (see header comment).
  std::uint64_t max_steps = 1u << 20;
};

struct RunStats {
  std::uint64_t steps = 0;     // scheduling-point evaluations
  std::uint64_t switches = 0;  // actual control transfers
  bool budget_exhausted = false;
  bool body_exception = false;  // a thread body threw (caught + recorded)
  std::string exception_what;
};

// One recorded branching decision of a kExhaustive schedule.
struct DfsChoice {
  std::uint32_t chosen = 0;   // index into that point's runnable-option list
  std::uint32_t options = 1;  // how many options the point offered
};

// The DFS frontier kExhaustive carries across schedules: a prefix of
// choices to replay. advance() backtracks to the next unexplored branch.
struct DfsState {
  std::vector<DfsChoice> prefix;
  bool exhausted = false;  // the bounded tree is fully explored

  // Move to the next schedule in DFS order; false (and exhausted=true)
  // when the whole bounded space has been enumerated.
  bool advance() {
    while (!prefix.empty() &&
           prefix.back().chosen + 1 >= prefix.back().options) {
      prefix.pop_back();
    }
    if (prefix.empty()) {
      exhausted = true;
      return false;
    }
    prefix.back().chosen++;
    return true;
  }
};

// Run `bodies` (one per thread) to completion under a controlled schedule.
// Blocks the calling thread; the caller's own code runs no scheduling
// points meanwhile. Only one run may be in flight per process at a time
// (enforced with an internal lock). `dfs` is required for kExhaustive and
// ignored otherwise.
RunStats run_schedule(const SchedulerOptions& opts,
                      std::vector<std::function<void()>> bodies,
                      DfsState* dfs = nullptr);

}  // namespace ale::check
