// Workload distribution generators: Zipfian keys, Poisson arrivals.
//
// The service harness (src/svc) generates open-loop traffic: request
// arrival times follow a Poisson process (exponential inter-arrival gaps)
// and keys follow a Zipfian popularity distribution, the standard model
// for skewed key-value traffic (YCSB's default). Both generators sit in
// common/ next to the PRNGs they consume so every layer — the real-thread
// harness, the deterministic service simulator, tests — draws from the
// same deterministic streams: seed them via derive_seed() and a run is
// replayable with ALE_SEED (see common/prng.hpp).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/prng.hpp"

namespace ale {

/// Zipfian rank generator over [0, n): rank 0 is the hottest item and
/// P(rank k) ∝ 1/(k+1)^theta. Uses the Gray et al. rejection-free inverse
/// method (the YCSB generator): O(n) setup to compute the harmonic
/// normalizer, O(1) per draw. theta in [0, 1); theta → 0 degenerates
/// toward uniform, the conventional "Zipfian" skew is theta = 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta, std::uint64_t seed)
      : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  /// Next rank in [0, n), 0 = hottest.
  std::uint64_t next() noexcept {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto r = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r >= n_ ? n_ - 1 : r;
  }

  std::uint64_t range() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

  /// The harmonic normalizer sum_{i=1..n} 1/i^theta (exposed for tests:
  /// the expected rank-0 frequency is 1/zeta).
  static double zeta(std::uint64_t n, double theta) noexcept {
    double z = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return z;
  }

  /// Deterministic rank → item scrambler (splittable-hash finalizer):
  /// spreads the popular head across the whole key space so hot keys do
  /// not cluster in one shard/slot. Stays in [0, n).
  static std::uint64_t scramble(std::uint64_t rank, std::uint64_t n) noexcept {
    std::uint64_t z = rank + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return n == 0 ? 0 : z % n;
  }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_ = 1.0;
  double alpha_ = 1.0;
  double eta_ = 1.0;
  Xoshiro256 rng_;
};

/// Poisson arrival process: next_gap() draws exponential inter-arrival
/// gaps with the configured mean (in whatever unit the caller's clock
/// uses — virtual cycles for the simulator, nanoseconds for the real
/// harness). Accumulating the gaps yields Poisson-distributed arrival
/// counts per window, the standard open-loop traffic model.
class PoissonArrivals {
 public:
  PoissonArrivals(double mean_gap, std::uint64_t seed)
      : mean_(mean_gap > 0.0 ? mean_gap : 1.0), rng_(seed) {}

  /// Exponentially distributed gap, mean = mean_gap. Strictly positive.
  double next_gap() noexcept {
    // 1 - u is in (0, 1]; clamp the log argument away from zero.
    const double u = rng_.next_double();
    return -std::log(std::max(1.0 - u, 1e-12)) * mean_;
  }

  double mean_gap() const noexcept { return mean_; }

 private:
  double mean_;
  Xoshiro256 rng_;
};

}  // namespace ale
