#include "kvdb/wicked.hpp"

namespace ale::kvdb {

const char* to_string(WickedOp op) noexcept {
  switch (op) {
    case WickedOp::kGetHit: return "get-hit";
    case WickedOp::kGetMiss: return "get-miss";
    case WickedOp::kSet: return "set";
    case WickedOp::kRemove: return "remove";
    case WickedOp::kAppend: return "append";
    case WickedOp::kCount: return "count";
    case WickedOp::kClear: return "clear";
    case WickedOp::kIterate: return "iterate";
  }
  return "?";
}

void wicked_key(std::uint64_t i, std::string& out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "k%012llu",
                              static_cast<unsigned long long>(i));
  out.assign(buf, static_cast<std::size_t>(n));
}

void wicked_value(std::uint64_t i, std::string& out) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "value-%llu",
                              static_cast<unsigned long long>(i));
  out.assign(buf, static_cast<std::size_t>(n));
}

namespace {

// Deterministic membership predicate for the prefill: key i is present iff
// a hash of i falls below the fill fraction. (Spreading by hash rather
// than by prefix keeps hits and misses interleaved across the key space.)
bool prefilled(std::uint64_t i, double fraction) {
  SplitMix64 sm(i ^ 0xa5a5a5a5a5a5a5a5ULL);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53 < fraction;
}

}  // namespace

void wicked_prefill(ShardedDb& db, const WickedConfig& cfg) {
  std::string key, value;
  for (std::uint64_t i = 0; i < cfg.key_range; ++i) {
    if (!cfg.nomutate && cfg.prefill_fraction >= 1.0) {
      wicked_key(i, key);
      wicked_value(i, value);
      db.set(key, value);
      continue;
    }
    if (prefilled(i, cfg.prefill_fraction)) {
      wicked_key(i, key);
      wicked_value(i, value);
      db.set(key, value);
    }
  }
}

WickedOp wicked_step(ShardedDb& db, const WickedConfig& cfg, Xoshiro256& rng,
                     std::string& scratch_key, std::string& scratch_val) {
  const std::uint64_t i = rng.next_below(cfg.key_range);
  wicked_key(i, scratch_key);

  if (cfg.nomutate) {
    return db.get(scratch_key, scratch_val) ? WickedOp::kGetHit
                                            : WickedOp::kGetMiss;
  }

  double roll = rng.next_double();
  if (roll < cfg.set_frac) {
    wicked_value(i, scratch_val);
    db.set(scratch_key, scratch_val);
    return WickedOp::kSet;
  }
  roll -= cfg.set_frac;
  if (roll < cfg.remove_frac) {
    db.remove(scratch_key);
    return WickedOp::kRemove;
  }
  roll -= cfg.remove_frac;
  if (roll < cfg.append_frac) {
    db.append(scratch_key, "+x");
    return WickedOp::kAppend;
  }
  roll -= cfg.append_frac;
  if (roll < cfg.count_frac) {
    (void)db.count();
    return WickedOp::kCount;
  }
  roll -= cfg.count_frac;
  if (roll < cfg.iterate_frac) {
    std::uint64_t checksum = 0;
    db.iterate([&checksum](std::string_view key, std::string_view) {
      checksum += key.size();
    });
    (void)checksum;
    return WickedOp::kIterate;
  }
  roll -= cfg.iterate_frac;
  if (roll < cfg.clear_frac) {
    db.clear();
    return WickedOp::kClear;
  }
  return db.get(scratch_key, scratch_val) ? WickedOp::kGetHit
                                          : WickedOp::kGetMiss;
}

}  // namespace ale::kvdb
