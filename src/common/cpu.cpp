#include "common/cpu.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace ale {

bool cpu_has_rtm() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  return (ebx & (1u << 11)) != 0;
#else
  return false;
#endif
}

}  // namespace ale
