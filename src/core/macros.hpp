// The paper's macro API (§3). Each BEGIN_CS* use site declares a static
// ScopeInfo (so distinct sites are distinct scopes, §3.4) and opens the
// engine's arm/try/finish/catch structure; ALE_END_CS closes it.
//
//   ALE_BEGIN_CS(&api, &lock, md);          // no SWOpt path at this site
//     ... critical section body ...
//   ALE_END_CS();
//
//   ALE_BEGIN_CS_SWOPT(&api, &lock, md);    // a SWOpt path exists
//     if (ALE_GET_EXEC_MODE() == ale::ExecMode::kSwOpt) { ... validated ... }
//     else { ... pessimistic ... }
//   ALE_END_CS();
//
// Inside the section: ALE_GET_EXEC_MODE(), ALE_SWOPT_FAILED(),
// ALE_SWOPT_SELF_ABORT(), ALE_CS_VAR (the engine object, e.g. for the
// lambda helpers). ALE_BEGIN_SCOPE/ALE_END_SCOPE add explicit context
// levels (scoped-locking idiom); ALE_BEGIN_CS_NAMED names the scope.
//
// Prefer the RAII/lambda API in core/ale.hpp for new C++ code; the macros
// exist for paper fidelity and for retrofitting C-style code bases.
#pragma once

#include "core/engine.hpp"

#define ALE_DETAIL_CAT2(a, b) a##b
#define ALE_DETAIL_CAT(a, b) ALE_DETAIL_CAT2(a, b)

#define ALE_CS_VAR _ale_cs_exec

// Core expansion shared by every BEGIN_CS variant: declare the site's
// static ScopeInfo, lower the parts to a CsRequest, and open the engine's
// single attempt loop (ALE_DETAIL_CS_ATTEMPT_LOOP_*, core/engine.hpp — the
// same expansion drive_cs/run_cs use, so the macro matrix carries no copy
// of the protocol).
#define ALE_DETAIL_BEGIN_CS(api, lockp, md, label, has_swopt, allow_htm)   \
  {                                                                        \
    static ale::ScopeInfo ALE_DETAIL_CAT(_ale_scope_, __LINE__){           \
        (label), (has_swopt), (allow_htm)};                                \
    ale::CsExec ALE_CS_VAR(ale::CsRequest{                                 \
        (api), (lockp), &(md), &ALE_DETAIL_CAT(_ale_scope_, __LINE__)});   \
    ALE_DETAIL_CS_ATTEMPT_LOOP_BEGIN(ALE_CS_VAR)
#define ALE_END_CS()                                                       \
    ALE_DETAIL_CS_ATTEMPT_LOOP_END(ALE_CS_VAR)                             \
  }

// Paper-shaped variants. `md` is the lock's ale::LockMd (the "label").
// The full matrix of §4.1's "unless the programmer explicitly prohibits one
// or both" elision kinds (each with a _NAMED form that names the scope):
//
//                       HTM allowed                HTM prohibited
//   no SWOpt path       ALE_BEGIN_CS               ALE_BEGIN_CS_NO_HTM
//   SWOpt path exists   ALE_BEGIN_CS_SWOPT         ALE_BEGIN_CS_SWOPT_NO_HTM
//
// (Prohibiting both SWOpt and HTM is just ALE_BEGIN_CS_NO_HTM: the section
// always runs under the lock, but still participates in statistics,
// context tracking, and grouping.)
#define ALE_BEGIN_CS(api, lockp, md) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, #md, false, true)
#define ALE_BEGIN_CS_SWOPT(api, lockp, md) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, #md, true, true)
#define ALE_BEGIN_CS_NAMED(api, lockp, md, name) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, name, false, true)
#define ALE_BEGIN_CS_SWOPT_NAMED(api, lockp, md, name) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, name, true, true)
// Programmer prohibits HTM at this site.
#define ALE_BEGIN_CS_NO_HTM(api, lockp, md) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, #md, false, false)
#define ALE_BEGIN_CS_NO_HTM_NAMED(api, lockp, md, name) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, name, false, false)
// SWOpt path exists AND HTM is prohibited — e.g. a section whose SWOpt
// validation is sound but whose body performs an HTM-unfriendly operation
// (syscall, huge write set) that would abort every transaction anyway.
#define ALE_BEGIN_CS_SWOPT_NO_HTM(api, lockp, md) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, #md, true, false)
#define ALE_BEGIN_CS_SWOPT_NO_HTM_NAMED(api, lockp, md, name) \
  ALE_DETAIL_BEGIN_CS(api, lockp, md, name, true, false)

#define ALE_GET_EXEC_MODE() (ALE_CS_VAR.exec_mode())
#define ALE_SWOPT_FAILED() (ALE_CS_VAR.swopt_failed())
#define ALE_SWOPT_SELF_ABORT() (ALE_CS_VAR.swopt_self_abort())

// §3.3: elide conflict-indication updates when no SWOpt path can observe
// them.
#define ALE_COULD_SWOPT_BE_RUNNING(md) ((md).could_swopt_be_running())

// §3.4 explicit scopes.
#define ALE_BEGIN_SCOPE(label)                                            \
  {                                                                       \
    static ale::ScopeInfo ALE_DETAIL_CAT(_ale_scope_, __LINE__){(label)}; \
    ale::ScopeGuard _ale_scope_guard(                                     \
        &ALE_DETAIL_CAT(_ale_scope_, __LINE__));
#define ALE_END_SCOPE() }
