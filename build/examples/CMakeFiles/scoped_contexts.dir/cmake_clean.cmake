file(REMOVE_RECURSE
  "CMakeFiles/scoped_contexts.dir/scoped_contexts.cpp.o"
  "CMakeFiles/scoped_contexts.dir/scoped_contexts.cpp.o.d"
  "scoped_contexts"
  "scoped_contexts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoped_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
