// Execution-engine behaviour: mode selection, retries, fallback, stats.
#include <gtest/gtest.h>

#include <atomic>

#include "core/ale.hpp"
#include "policy/static_policy.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct Fixture : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
  void TearDown() override { set_global_policy(nullptr); }
};

using EngineTest = Fixture;

TEST_F(EngineTest, LockOnlyPolicyExecutesInLockMode) {
  TatasLock lock;
  LockMd md("engine.lockonly");
  static ScopeInfo scope("cs");
  ExecMode seen = ExecMode::kHtm;
  bool was_locked = false;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec& cs) {
    seen = cs.exec_mode();
    was_locked = lock.is_locked();
  });
  EXPECT_EQ(seen, ExecMode::kLock);
  EXPECT_TRUE(was_locked);
  EXPECT_FALSE(lock.is_locked());
}

TEST_F(EngineTest, StaticPolicyUsesHtmFirst) {
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  TatasLock lock;
  LockMd md("engine.htmfirst");
  static ScopeInfo scope("cs");
  ExecMode seen = ExecMode::kLock;
  std::uint64_t x = 0;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec& cs) {
    seen = cs.exec_mode();
    tx_store(x, std::uint64_t{1});
    EXPECT_FALSE(lock.is_locked());  // elided: lock never taken
  });
  EXPECT_EQ(seen, ExecMode::kHtm);
  EXPECT_EQ(x, 1u);
}

TEST_F(EngineTest, FallsBackToLockAfterXAttempts) {
  StaticPolicyConfig cfg;
  cfg.x = 3;
  cfg.use_swopt = false;
  test::PolicyInstaller p(std::make_unique<StaticPolicy>(cfg));
  TatasLock lock;
  LockMd md("engine.fallback");
  static ScopeInfo scope("cs");
  int htm_attempts = 0;
  ExecMode final_mode = ExecMode::kHtm;
  std::uint64_t x = 0;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec& cs) {
    final_mode = cs.exec_mode();
    if (cs.exec_mode() == ExecMode::kHtm) {
      ++htm_attempts;
      htm::tx_abort(htm::AbortCause::kExplicit, 9);  // force failure
    }
    tx_store(x, std::uint64_t{1});
  });
  EXPECT_EQ(htm_attempts, 3);
  EXPECT_EQ(final_mode, ExecMode::kLock);
  EXPECT_EQ(x, 1u);
}

TEST_F(EngineTest, SwOptRetriesThenLock) {
  StaticPolicyConfig cfg;
  cfg.use_htm = false;
  cfg.y = 2;
  test::PolicyInstaller p(std::make_unique<StaticPolicy>(cfg));
  TatasLock lock;
  LockMd md("engine.swopt");
  static ScopeInfo scope("cs", /*has_swopt=*/true);
  int swopt_attempts = 0;
  ExecMode final_mode = ExecMode::kHtm;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope,
             [&](CsExec& cs) -> CsBody {
               final_mode = cs.exec_mode();
               if (cs.in_swopt()) {
                 ++swopt_attempts;
                 return CsBody::kRetrySwOpt;  // always "invalidated"
               }
               return CsBody::kDone;
             });
  EXPECT_EQ(swopt_attempts, 2);
  EXPECT_EQ(final_mode, ExecMode::kLock);
}

TEST_F(EngineTest, SwOptSucceedsFirstTry) {
  StaticPolicyConfig cfg;
  cfg.use_htm = false;
  test::PolicyInstaller p(std::make_unique<StaticPolicy>(cfg));
  TatasLock lock;
  LockMd md("engine.swoptok");
  static ScopeInfo scope("cs", true);
  bool locked_during = true;
  ExecMode seen = ExecMode::kLock;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec& cs) {
    seen = cs.exec_mode();
    locked_during = lock.is_locked();
  });
  EXPECT_EQ(seen, ExecMode::kSwOpt);
  EXPECT_FALSE(locked_during);
}

TEST_F(EngineTest, ScopeWithoutSwOptNeverRunsSwOpt) {
  StaticPolicyConfig cfg;
  cfg.use_htm = false;
  cfg.y = 100;
  test::PolicyInstaller p(std::make_unique<StaticPolicy>(cfg));
  TatasLock lock;
  LockMd md("engine.noswopt");
  static ScopeInfo scope("cs", /*has_swopt=*/false);
  ExecMode seen = ExecMode::kSwOpt;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope,
             [&](CsExec& cs) { seen = cs.exec_mode(); });
  EXPECT_EQ(seen, ExecMode::kLock);
}

TEST_F(EngineTest, HtmDisabledScopeFallsThrough) {
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  TatasLock lock;
  LockMd md("engine.nohtm");
  static ScopeInfo scope("cs", false, /*allow_htm=*/false);
  ExecMode seen = ExecMode::kHtm;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope,
             [&](CsExec& cs) { seen = cs.exec_mode(); });
  EXPECT_EQ(seen, ExecMode::kLock);
}

TEST_F(EngineTest, NoHtmPlatformFallsThrough) {
  test::use_no_htm();
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  TatasLock lock;
  LockMd md("engine.t2");
  static ScopeInfo scope("cs");
  ExecMode seen = ExecMode::kHtm;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope,
             [&](CsExec& cs) { seen = cs.exec_mode(); });
  EXPECT_EQ(seen, ExecMode::kLock);
}

TEST_F(EngineTest, UserExceptionReleasesLock) {
  TatasLock lock;
  LockMd md("engine.exception");
  static ScopeInfo scope("cs");
  EXPECT_THROW(
      execute_cs(lock_api<TatasLock>(), &lock, md, scope,
                 [&](CsExec&) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  EXPECT_FALSE(lock.is_locked());
  // Engine state fully unwound: a fresh CS still works.
  bool ran = false;
  execute_cs(lock_api<TatasLock>(), &lock, md, scope,
             [&](CsExec&) { ran = true; });
  EXPECT_TRUE(ran);
}

TEST_F(EngineTest, StatsRecordExecutionsAndModes) {
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  TatasLock lock;
  LockMd md("engine.stats");
  static ScopeInfo scope("cs");
  std::uint64_t x = 0;
  for (int i = 0; i < 200; ++i) {
    execute_cs(lock_api<TatasLock>(), &lock, md, scope,
               [&](CsExec&) { tx_store(x, tx_load(x) + 1); });
  }
  EXPECT_EQ(x, 200u);
  EXPECT_EQ(md.total_executions(), 200u);  // BFP exact below threshold
  bool found = false;
  md.for_each_granule([&](GranuleMd& g) {
    found = true;
    EXPECT_EQ(g.stats.fold().of(ExecMode::kHtm).successes, 200u);
  });
  EXPECT_TRUE(found);
}

TEST_F(EngineTest, GranulesDistinguishContexts) {
  test::PolicyInstaller p(std::make_unique<StaticPolicy>());
  TatasLock lock;
  LockMd md("engine.granules");
  static ScopeInfo scope("cs");
  static ScopeInfo outer_a("callerA");
  static ScopeInfo outer_b("callerB");
  auto run = [&] {
    execute_cs(lock_api<TatasLock>(), &lock, md, scope, [&](CsExec&) {});
  };
  {
    ScopeGuard g(&outer_a);
    run();
    run();
  }
  {
    ScopeGuard g(&outer_b);
    run();
  }
  int granules = 0;
  md.for_each_granule([&](GranuleMd&) { ++granules; });
  EXPECT_EQ(granules, 2);
}

TEST_F(EngineTest, ConcurrentMixedModesKeepCounterExact) {
  StaticPolicyConfig cfg;
  cfg.x = 4;
  cfg.y = 2;
  test::PolicyInstaller p(std::make_unique<StaticPolicy>(cfg));
  TatasLock lock;
  LockMd md("engine.concurrent");
  static ScopeInfo scope("cs");
  alignas(64) std::uint64_t counter = 0;
  constexpr int kPer = 4000;
  test::run_threads(4, [&](unsigned) {
    for (int i = 0; i < kPer; ++i) {
      execute_cs(lock_api<TatasLock>(), &lock, md, scope,
                 [&](CsExec&) { tx_store(counter, tx_load(counter) + 1); });
    }
  });
  EXPECT_EQ(counter, 4u * kPer);
}

TEST_F(EngineTest, CurrentExecModeOutsideCsIsLock) {
  EXPECT_EQ(current_exec_mode(), ExecMode::kLock);
}

}  // namespace
}  // namespace ale
