// Mostly header-only module; this TU anchors the static library and hosts
// the process-wide stripe-slot assignment for striped granule counters.
#include "stats/bfp_counter.hpp"
#include "stats/histogram.hpp"
#include "stats/sampled_time.hpp"
#include "stats/striped_counter.hpp"
#include "stats/table.hpp"

#include <atomic>
#include <thread>

#include "common/env.hpp"

namespace ale {

template class AttemptHistogram<64>;

namespace {

unsigned compute_stripe_count() noexcept {
  unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) ncpu = 1;
  if (ncpu > kMaxStatStripes) ncpu = kMaxStatStripes;
  std::int64_t n = env_int("ALE_STAT_STRIPES", static_cast<std::int64_t>(ncpu));
  if (n < 1) n = 1;
  if (n > static_cast<std::int64_t>(kMaxStatStripes)) n = kMaxStatStripes;
  return static_cast<unsigned>(n);
}

std::atomic<unsigned> g_next_stripe{0};

}  // namespace

unsigned stat_stripe_count() noexcept {
  static const unsigned count = compute_stripe_count();
  return count;
}

unsigned my_stat_stripe() noexcept {
  thread_local const unsigned slot =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed) %
      stat_stripe_count();
  return slot;
}

}  // namespace ale
