#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/prng.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.01);  // covers the interval
  EXPECT_GT(max, 0.99);
}

TEST(Xoshiro256, BernoulliRateApproximatelyCorrect) {
  Xoshiro256 rng(11);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro256, UniformityChiSquaredish) {
  Xoshiro256 rng(13);
  constexpr int kBuckets = 16;
  int counts[kBuckets] = {};
  constexpr int kN = 160000;
  for (int i = 0; i < kN; ++i) counts[rng.next_below(kBuckets)]++;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kN / kBuckets, kN / kBuckets * 0.05) << b;
  }
}

TEST(ThreadPrng, DistinctStreamsPerThread) {
  std::uint64_t first[4] = {};
  test::run_threads(4, [&](unsigned idx) { first[idx] = thread_prng().next(); });
  std::set<std::uint64_t> uniq(first, first + 4);
  EXPECT_EQ(uniq.size(), 4u);
}

// RAII: override the run seed for one test and restore the historical
// default (matching prng.cpp's kDefaultRunSeed) afterwards, so test order
// cannot leak a seed into other suites.
struct RunSeedGuard {
  explicit RunSeedGuard(std::uint64_t s) { set_run_seed(s); }
  ~RunSeedGuard() { set_run_seed(0x5eed5eed5eed5eedULL); }
};

TEST(RunSeed, DefaultIsHistoricalSeed) {
  // Without ALE_SEED the latched value must be the default that reproduces
  // pre-knob behaviour bit-for-bit. (Skipped under an external ALE_SEED —
  // e.g. a seeded CI lane re-running the whole suite.)
  if (std::getenv("ALE_SEED") != nullptr) GTEST_SKIP();
  EXPECT_EQ(run_seed(), 0x5eed5eed5eed5eedULL);
}

TEST(RunSeed, SetRunSeedTakesEffect) {
  RunSeedGuard g(12345);
  EXPECT_EQ(run_seed(), 12345u);
}

TEST(RunSeed, DeriveSeedIsDeterministicAndSaltSensitive) {
  RunSeedGuard g(99);
  const std::uint64_t a = derive_seed(1);
  EXPECT_EQ(a, derive_seed(1));
  EXPECT_NE(a, derive_seed(2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(1, 3));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));

  // Different run seed → different derived streams for the same salt.
  set_run_seed(100);
  EXPECT_NE(a, derive_seed(1));
}

}  // namespace
}  // namespace ale
