file(REMOVE_RECURSE
  "CMakeFiles/ale_tests_common.dir/common/test_env_and_cacheline.cpp.o"
  "CMakeFiles/ale_tests_common.dir/common/test_env_and_cacheline.cpp.o.d"
  "CMakeFiles/ale_tests_common.dir/common/test_prng.cpp.o"
  "CMakeFiles/ale_tests_common.dir/common/test_prng.cpp.o.d"
  "ale_tests_common"
  "ale_tests_common.pdb"
  "ale_tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ale_tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
