# Empty compiler generated dependencies file for ale_core.
# This may be replaced when dependencies are built.
