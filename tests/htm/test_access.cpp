// tx_load / tx_store / versioned_fetch_add outside transactions.
#include <gtest/gtest.h>

#include "htm/access.hpp"
#include "htm/version_table.hpp"
#include "test_util.hpp"

namespace ale {
namespace {

struct AccessTest : ::testing::Test {
  void SetUp() override { test::use_emulated_ideal(); }
};

TEST_F(AccessTest, PlainRoundTrip) {
  std::uint64_t x = 0;
  tx_store(x, std::uint64_t{42});
  EXPECT_EQ(tx_load(x), 42u);
  EXPECT_EQ(x, 42u);
}

TEST_F(AccessTest, ConstLoad) {
  const std::uint64_t x = 9;
  EXPECT_EQ(tx_load(x), 9u);
}

TEST_F(AccessTest, PointerRoundTrip) {
  int target = 0;
  int* p = nullptr;
  tx_store(p, &target);
  EXPECT_EQ(tx_load(p), &target);
}

TEST_F(AccessTest, NonTxStoreBumpsSlotVersion) {
  using htm::detail::VersionTable;
  alignas(64) std::uint64_t x = 0;
  auto& slot = VersionTable::instance().slot_for(&x);
  const std::uint64_t before =
      VersionTable::version_of(slot.load(std::memory_order_acquire));
  tx_store(x, std::uint64_t{1});
  const std::uint64_t after =
      VersionTable::version_of(slot.load(std::memory_order_acquire));
  EXPECT_GT(after, before);
  EXPECT_FALSE(
      VersionTable::locked(slot.load(std::memory_order_acquire)));
}

TEST_F(AccessTest, NonEmulatedBackendSkipsVersioning) {
  using htm::detail::VersionTable;
  htm::Config c;
  c.backend = htm::BackendKind::kNone;
  htm::configure(c);
  alignas(64) std::uint64_t x = 0;
  auto& slot = VersionTable::instance().slot_for(&x);
  const std::uint64_t before = slot.load(std::memory_order_acquire);
  tx_store(x, std::uint64_t{5});
  EXPECT_EQ(slot.load(std::memory_order_acquire), before);
  EXPECT_EQ(x, 5u);
  test::use_emulated_ideal();
}

TEST_F(AccessTest, VersionedFetchAddConcurrentExact) {
  alignas(64) std::uint64_t counter = 0;
  test::run_threads(4, [&](unsigned) {
    for (int i = 0; i < 20000; ++i) {
      detail::versioned_fetch_add(counter, std::uint64_t{1});
    }
  });
  EXPECT_EQ(counter, 4u * 20000u);
}

TEST_F(AccessTest, ConcurrentPlainStoresToSameSlotNeverWedgeIt) {
  // Two locations in one cache line share a version slot; the slot-lock
  // bracket must always be released.
  using htm::detail::VersionTable;
  struct alignas(64) Pair {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  } pair;
  test::run_threads(4, [&](unsigned idx) {
    for (int i = 0; i < 20000; ++i) {
      if (idx % 2 == 0) {
        tx_store(pair.a, static_cast<std::uint64_t>(i));
      } else {
        tx_store(pair.b, static_cast<std::uint64_t>(i));
      }
    }
  });
  auto& slot = VersionTable::instance().slot_for(&pair.a);
  EXPECT_FALSE(VersionTable::locked(slot.load(std::memory_order_acquire)));
}

TEST_F(AccessTest, SignedAndSmallTypes) {
  std::int32_t i = -5;
  tx_store(i, std::int32_t{17});
  EXPECT_EQ(tx_load(i), 17);
  bool b = false;
  tx_store(b, true);
  EXPECT_TRUE(tx_load(b));
  double d = 0.0;
  tx_store(d, 2.5);
  EXPECT_DOUBLE_EQ(tx_load(d), 2.5);
}

}  // namespace
}  // namespace ale
