// Platform profiles for the emulated best-effort HTM.
//
// The paper evaluates on Rock (SPARC, best-effort HTM with severe
// limitations), Haswell (Intel TSX/RTM), and a T2+ with no HTM. Real HTM
// hardware is scarce today, so per DESIGN.md §2 the emulated backend
// substitutes for it; a profile captures the externally visible differences
// between those machines:
//   * capacity — how much data a transaction may touch before a capacity
//     abort (Rock: a tiny store queue; Haswell: the L1 for writes and a
//     larger structure for reads),
//   * environmental aborts — best-effort quirks (interrupts, TLB misses,
//     mispredicted branches on Rock, unfriendly instructions) modeled as a
//     per-access and per-commit abort probability,
//   * availability — T2+ simply has none.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ale::htm {

struct PlatformProfile {
  const char* name = "ideal";
  bool htm_available = true;

  // Capacity limits in distinct cache lines tracked.
  std::uint32_t read_cap_lines = 1u << 20;
  std::uint32_t write_cap_lines = 1u << 20;

  // Best-effort quirk injection (0 disables — used by deterministic tests).
  double abort_prob_per_access = 0.0;
  double abort_prob_per_commit = 0.0;

  // Rock-style asymmetry: probability that a transactional *function call /
  // store-queue* event kills the transaction, charged per write.
  double abort_prob_per_write = 0.0;
};

// HTM with no limits or noise: used by unit tests for determinism.
constexpr PlatformProfile ideal_profile() {
  return PlatformProfile{};
}

// Rock (SPARC): best-effort HTM with a ~32-entry store queue and frequent
// environmental aborts (TLB misses, save/restore, function calls).
constexpr PlatformProfile rock_profile() {
  PlatformProfile p;
  p.name = "rock";
  p.read_cap_lines = 512;
  p.write_cap_lines = 32;
  p.abort_prob_per_access = 2e-4;
  p.abort_prob_per_write = 2e-3;
  p.abort_prob_per_commit = 0.01;
  return p;
}

// Haswell (Intel RTM): write set bounded by L1d (32 KiB = 512 lines), read
// set tracked more loosely; occasional environmental aborts.
constexpr PlatformProfile haswell_profile() {
  PlatformProfile p;
  p.name = "haswell";
  p.read_cap_lines = 4096;
  p.write_cap_lines = 512;
  p.abort_prob_per_access = 1e-5;
  p.abort_prob_per_write = 1e-4;
  p.abort_prob_per_commit = 0.002;
  return p;
}

// SPARC T2+: no HTM at all — TLE is unavailable; only SWOpt and Lock.
constexpr PlatformProfile t2_profile() {
  PlatformProfile p;
  p.name = "t2";
  p.htm_available = false;
  return p;
}

// Lookup by name ("ideal", "rock", "haswell", "t2"/"none").
std::optional<PlatformProfile> profile_by_name(std::string_view name);

}  // namespace ale::htm
