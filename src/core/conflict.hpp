// Conflict indicator: the paper's tblVer pattern (§3.2).
//
// A version number that is odd exactly while some thread is inside a
// *conflicting region* — the explicitly identified part of a critical
// section that can interfere with concurrent SWOpt executions. SWOpt paths
// snapshot an even value and re-validate before using anything read since
// ("validate before using any value that was read since the last
// validation").
//
// All accesses go through the tx accessors, so:
//  * in HTM mode the increments are transactional (and should be guarded by
//    ALE_COULD_SWOPT_BE_RUNNING to avoid needless HTM-vs-HTM conflicts,
//    §3.3),
//  * in Lock mode they are version-bracketed plain stores visible to
//    emulated transactions,
//  * SWOpt readers get plain acquire loads.
#pragma once

#include <cstdint>

#include "check/sched_point.hpp"
#include "common/cpu.hpp"
#include "htm/access.hpp"
#include "htm/htm.hpp"
#include "inject/inject.hpp"
#include "sync/backoff.hpp"

namespace ale {

class ConflictIndicator {
 public:
  ConflictIndicator() = default;
  ConflictIndicator(const ConflictIndicator&) = delete;
  ConflictIndicator& operator=(const ConflictIndicator&) = delete;

  // Bracket a conflicting region (paper's BeginConflictingAction /
  // EndConflictingAction — both "simply increment tblVer").
  void begin_conflicting_action() { bump(); }
  void end_conflicting_action() { bump(); }

  // Paper's GetVer: read the version, optionally waiting until it is even
  // (no conflicting region in progress). Backs off (eventually yielding)
  // while waiting: on an oversubscribed host the thread inside the
  // conflicting region may need our core.
  std::uint64_t get_ver(bool wait_even) const {
    check::preempt(check::Sp::kSwOptSnapshot);
    Backoff backoff;
    for (;;) {
      const std::uint64_t v = tx_load(ver_);
      if (!wait_even || (v & 1) == 0) return v;
      backoff.pause();
    }
  }

  // `v != GetVer(false)` from Figure 1. The swopt.invalidate injection
  // point forces a positive answer — exactly what a SWOpt path observes
  // when a conflicting region begins mid-validation — so persistent SWOpt
  // invalidation can be scripted without a writer storm.
  bool changed_since(std::uint64_t snapshot) const {
    check::preempt(check::Sp::kSwOptValidate);
    // Mutation self-test (ale::check): lie "nothing changed", disabling the
    // validation the SWOpt path's correctness rests on. The explorer must
    // catch the resulting non-linearizable read.
    if (inject::should_fire(inject::Point::kSwOptBlind)) return false;
    if (inject::should_fire(inject::Point::kSwOptInvalidate)) return true;
    return tx_load(ver_) != snapshot;
  }

 private:
  void bump() { tx_store(ver_, tx_load(ver_) + 1); }

  std::uint64_t ver_ = 0;
};

// RAII conflicting-region bracket that honors §3.3's optimization: "This
// allows executions in HTM mode to elide the conflict indication when no
// SWOpt path is running". The elision is applied only inside a transaction:
// there the presence query is subscribed (hardware read set / emulated
// read-set tracking), so a SWOpt arrival before our commit aborts us and
// the retry sees it. A Lock-mode execution has no such safety net — nothing
// aborts it — so it always bumps.
template <typename LockMdT>
class ConflictingAction {
 public:
  ConflictingAction(ConflictIndicator& ind, LockMdT& md)
      : ind_(ind),
        began_in_txn_(htm::in_txn()),
        active_(!began_in_txn_ || md.could_swopt_be_running()) {
    if (active_) ind_.begin_conflicting_action();
  }
  ~ConflictingAction() {
    if (!active_) return;
    // Abort-unwind hazard: if we began inside a transaction that has since
    // aborted (a TxAbortException is unwinding through us), the buffered
    // begin-increment died with the redo log — memory was never touched.
    // Emitting the end-increment now would land in real memory and leave
    // the indicator odd forever, wedging every SWOpt reader in
    // get_ver(true). Skip it; the retry re-creates the guard.
    if (began_in_txn_ && !htm::in_txn()) return;
    ind_.end_conflicting_action();
  }
  ConflictingAction(const ConflictingAction&) = delete;
  ConflictingAction& operator=(const ConflictingAction&) = delete;

 private:
  ConflictIndicator& ind_;
  bool began_in_txn_;
  bool active_;
};

}  // namespace ale
