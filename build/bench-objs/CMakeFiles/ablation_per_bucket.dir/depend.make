# Empty dependencies file for ablation_per_bucket.
# This may be replaced when dependencies are built.
