// ale::inject firing semantics: deterministic schedules (every=, count=,
// after=, for=), probabilistic clauses under a fixed seed, thread filters,
// and magnitudes.
#include <gtest/gtest.h>

#include <vector>

#include "inject/inject.hpp"
#include "test_util.hpp"

namespace ale::inject {
namespace {

struct InjectFireTest : ::testing::Test {
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(InjectFireTest, EveryNthFiresOnSchedule) {
  ASSERT_TRUE(configure("htm.begin:every=3"));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(should_fire(Point::kHtmBegin));
  // Fires on evaluations 3, 6, 9 (1-based) of this thread.
  const std::vector<bool> want = {false, false, true, false, false,
                                  true,  false, false, true};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(fired_count(Point::kHtmBegin), 3u);
  EXPECT_EQ(eval_count(Point::kHtmBegin), 9u);
}

TEST_F(InjectFireTest, ProbabilityOneAlwaysFires) {
  ASSERT_TRUE(configure("htm.read"));  // default p=1
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(should_fire(Point::kHtmRead));
}

TEST_F(InjectFireTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(configure("htm.read:p=0"));
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(should_fire(Point::kHtmRead));
  EXPECT_EQ(eval_count(Point::kHtmRead), 50u);
}

TEST_F(InjectFireTest, SeededProbabilisticScheduleIsReproducible) {
  auto collect = [] {
    std::vector<bool> v;
    for (int i = 0; i < 200; ++i) v.push_back(should_fire(Point::kHtmCommit));
    return v;
  };
  ASSERT_TRUE(configure("htm.commit:p=0.5,seed=7"));
  const auto first = collect();
  ASSERT_TRUE(configure("htm.commit:p=0.5,seed=7"));
  EXPECT_EQ(first, collect());
  ASSERT_TRUE(configure("htm.commit:p=0.5,seed=8"));
  EXPECT_NE(first, collect());

  int hits = 0;
  for (const bool b : first) hits += b ? 1 : 0;
  EXPECT_GT(hits, 60);  // crude sanity for p=0.5 over 200 trials
  EXPECT_LT(hits, 140);
}

TEST_F(InjectFireTest, CountCapsFiringsPerThread) {
  ASSERT_TRUE(configure("htm.begin:count=2"));
  int fired = 0;
  for (int i = 0; i < 20; ++i) fired += should_fire(Point::kHtmBegin) ? 1 : 0;
  EXPECT_EQ(fired, 2);
}

TEST_F(InjectFireTest, AfterAndForBoundTheArmedWindow) {
  // Dormant for 5 evaluations, armed for the next 3, then disarmed.
  ASSERT_TRUE(configure("htm.begin:after=5,for=3"));
  std::vector<bool> fired;
  for (int i = 0; i < 12; ++i) fired.push_back(should_fire(Point::kHtmBegin));
  const std::vector<bool> want = {false, false, false, false, false,
                                  true,  true,  true,  false, false,
                                  false, false};
  EXPECT_EQ(fired, want);
}

TEST_F(InjectFireTest, ThreadFilterTargetsPinnedIndices) {
  ASSERT_TRUE(configure("htm.begin:threads=1+3"));
  bool fired_by[4] = {};
  test::run_threads(4, [&](unsigned idx) {
    set_thread_index(idx);
    fired_by[idx] = should_fire(Point::kHtmBegin);
  });
  EXPECT_FALSE(fired_by[0]);
  EXPECT_TRUE(fired_by[1]);
  EXPECT_FALSE(fired_by[2]);
  EXPECT_TRUE(fired_by[3]);
}

TEST_F(InjectFireTest, PerThreadSchedulesAreIndependent) {
  ASSERT_TRUE(configure("htm.begin:every=4"));
  // Each thread owns its own counters: every thread sees the same schedule.
  test::run_threads(3, [&](unsigned idx) {
    set_thread_index(idx);
    int fired = 0;
    for (int i = 0; i < 8; ++i) fired += should_fire(Point::kHtmBegin) ? 1 : 0;
    EXPECT_EQ(fired, 2) << "thread " << idx;
  });
  EXPECT_EQ(fired_count(Point::kHtmBegin), 6u);
  EXPECT_EQ(eval_count(Point::kHtmBegin), 24u);
}

TEST_F(InjectFireTest, MagnitudeReportsXOrDefault) {
  EXPECT_EQ(magnitude(Point::kLockHold, 123), 123u);  // disabled → default
  ASSERT_TRUE(configure("lock.hold:x=777"));
  EXPECT_EQ(magnitude(Point::kLockHold, 123), 777u);
  // Active clause without x= → default.
  ASSERT_TRUE(configure("lock.hold:every=2"));
  EXPECT_EQ(magnitude(Point::kLockHold, 123), 123u);
  // Inactive point while another is active → default.
  EXPECT_EQ(magnitude(Point::kBackoff, 9), 9u);
}

TEST_F(InjectFireTest, PerturbSpinsZeroWhenNotFiring) {
  ASSERT_TRUE(configure("sync.backoff:every=2,x=64"));
  EXPECT_EQ(perturb_spins(Point::kBackoff, 32), 0u);   // eval 1: no fire
  EXPECT_EQ(perturb_spins(Point::kBackoff, 32), 64u);  // eval 2: fires
}

}  // namespace
}  // namespace ale::inject
