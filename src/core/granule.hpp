// Granule metadata: "the library associates granule metadata with each
// <lock, context> pair with which a critical section is executed, which is
// used to record information and statistics about these executions" (§4).
//
// Counters are BFP statistical counters and timings are ~3%-sampled CAS
// summaries, per §4.3, so granule updates stay cheap and scalable. On top
// of that, the hot counters are *striped* across min(ncpu, 8)
// cacheline-aligned slots (stats/striped_counter.hpp): writers touch only
// their own stripe, readers sum every stripe through fold(), so the
// projected totals — and everything the policy learns from them — are the
// same as with a single shared counter, without the all-threads-on-one-line
// CAS storm that made contended throughput scale negatively.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/cacheline.hpp"
#include "core/attempt_plan.hpp"
#include "core/context.hpp"
#include "core/mode.hpp"
#include "core/policy_iface.hpp"
#include "htm/abort.hpp"
#include "stats/bfp_counter.hpp"
#include "stats/sampled_time.hpp"
#include "stats/striped_counter.hpp"

namespace ale {

// ---- folded (reader-side) projections ----

struct ModeTotals {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
};

// A point-in-time sum over all stripes. Plain integers: cheap to copy,
// no atomics, safe to reason about in tests and reports.
struct GranuleTotals {
  std::uint64_t executions = 0;
  ModeTotals mode[kNumExecModes];
  std::uint64_t abort_cause[htm::kNumAbortCauses] = {};
  std::uint64_t swopt_failures = 0;

  ModeTotals& of(ExecMode m) noexcept {
    return mode[static_cast<std::size_t>(m)];
  }
  const ModeTotals& of(ExecMode m) const noexcept {
    return mode[static_cast<std::size_t>(m)];
  }
};

// ---- writer-side striped state ----

struct ModeCounters {
  BfpCounter attempts;
  BfpCounter successes;
};

// One stripe's worth of hot counters. alignas keeps each stripe on its own
// cacheline set so writers on different stripes never collide.
struct alignas(kCacheLineSize) GranuleCounterStripe {
  BfpCounter executions;
  ModeCounters mode[kNumExecModes];
  BfpCounter abort_cause[htm::kNumAbortCauses];
  BfpCounter swopt_failures;

  ModeCounters& of(ExecMode m) noexcept {
    return mode[static_cast<std::size_t>(m)];
  }
};

// Sampled timings stay unstriped: they are already rate-limited to ~3% of
// events (§4.3), so their CAS traffic is negligible; a private aligned
// block keeps them off the counter stripes and the read-mostly header.
struct alignas(kCacheLineSize) GranuleTimings {
  SampledTime exec_time[kNumExecModes];  // whole-execution time per winner
  SampledTime fail_time[kNumExecModes];  // time burnt by failed attempts
  SampledTime lock_wait;
};

/// Striped per-granule statistics. Writers update their stripe() (or let
/// the engine's delta buffer do it in batches); readers call fold().
class GranuleStats {
 public:
  /// The calling thread's counter stripe.
  GranuleCounterStripe& stripe() noexcept {
    return stripes_[my_stat_stripe()];
  }
  /// A specific stripe (tests and the delta flusher).
  GranuleCounterStripe& stripe_at(unsigned i) noexcept { return stripes_[i]; }

  /// Sum of all stripes' projected counts. Not a linearizable snapshot
  /// under concurrent writers — same contract a single BFP counter already
  /// had — but exact whenever writers are quiescent and every stripe is
  /// still below its threshold.
  GranuleTotals fold() const noexcept {
    GranuleTotals t;
    for (unsigned i = 0; i < kMaxStatStripes; ++i) {
      const GranuleCounterStripe& s = stripes_[i];
      t.executions += s.executions.read();
      for (unsigned m = 0; m < kNumExecModes; ++m) {
        t.mode[m].attempts += s.mode[m].attempts.read();
        t.mode[m].successes += s.mode[m].successes.read();
      }
      for (unsigned c = 0; c < htm::kNumAbortCauses; ++c) {
        t.abort_cause[c] += s.abort_cause[c].read();
      }
      t.swopt_failures += s.swopt_failures.read();
    }
    return t;
  }

  SampledTime& exec_time(ExecMode m) noexcept {
    return timings_.exec_time[static_cast<std::size_t>(m)];
  }
  const SampledTime& exec_time(ExecMode m) const noexcept {
    return timings_.exec_time[static_cast<std::size_t>(m)];
  }
  SampledTime& fail_time(ExecMode m) noexcept {
    return timings_.fail_time[static_cast<std::size_t>(m)];
  }
  const SampledTime& fail_time(ExecMode m) const noexcept {
    return timings_.fail_time[static_cast<std::size_t>(m)];
  }
  SampledTime& lock_wait() noexcept { return timings_.lock_wait; }
  const SampledTime& lock_wait() const noexcept { return timings_.lock_wait; }

 private:
  GranuleCounterStripe stripes_[kMaxStatStripes];
  GranuleTimings timings_;
};

class GranuleMd {
 public:
  GranuleMd(LockMd& lock, const ContextNode* ctx) noexcept
      : lock_(lock), ctx_(ctx) {}
  GranuleMd(const GranuleMd&) = delete;
  GranuleMd& operator=(const GranuleMd&) = delete;
  ~GranuleMd() {
    delete policy_state_.load(std::memory_order_acquire);
  }

  LockMd& lock_md() noexcept { return lock_; }
  const ContextNode* context() const noexcept { return ctx_; }

  // Converged fast-path plan (core/attempt_plan.hpp). The engine reads it
  // with one relaxed load per execution; the word is self-contained, so no
  // ordering beyond the store-release on publication is needed. Policies
  // publish after convergence and must clear before changing their mind.
  AttemptPlan attempt_plan() const noexcept {
    return AttemptPlan{plan_word_.load(std::memory_order_relaxed)};
  }
  void publish_attempt_plan(AttemptPlan plan) noexcept {
    plan_word_.store(plan.word, std::memory_order_release);
  }
  void clear_attempt_plan() noexcept {
    plan_word_.store(AttemptPlan::kInvalid, std::memory_order_release);
  }

  // Policy-owned per-granule state, created lazily by the installed policy.
  PolicyGranuleState* policy_state(Policy& policy) {
    PolicyGranuleState* s = policy_state_.load(std::memory_order_acquire);
    if (s != nullptr) return s;
    auto fresh = policy.make_granule_state(*this);
    if (fresh == nullptr) return nullptr;
    PolicyGranuleState* expected = nullptr;
    if (policy_state_.compare_exchange_strong(expected, fresh.get(),
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      return fresh.release();
    }
    return expected;  // lost the race; `fresh` is discarded
  }

 private:
  // Read-mostly header: identity, plan word, policy state. Grouped on its
  // own leading cachelines so the engine's per-execution plan load never
  // shares a line with counter CAS traffic (the stats block below is
  // cacheline-aligned, which also pads out this header).
  LockMd& lock_;
  const ContextNode* ctx_;
  std::atomic<std::uint64_t> plan_word_{AttemptPlan::kInvalid};
  std::atomic<PolicyGranuleState*> policy_state_{nullptr};

 public:
  // Striped hot counters and sampled timings (cacheline-aligned blocks).
  GranuleStats stats;
};

}  // namespace ale
