// The static policy (§4.2): "uses fixed values of X and Y for all critical
// section executions. It makes up to X attempts using HTM (if available).
// If unsuccessful it then makes up to Y attempts using the SWOpt path (if
// available). It resorts to acquiring the lock if these attempts are also
// unsuccessful."
//
// The paper's experiment names map onto configurations of this class:
//   Static-HL-k     → {x=k, y=0, use_swopt=false}        ("HTMLock")
//   Static-HLL-k    → {x=k, y=0, use_swopt=false, lazy=true}
//                     (lazy-subscription HTMLock; engine demotes to eager
//                      wherever htm::lazy_available() is false)
//   Static-SL-k     → {x=0, y=k, use_htm=false}          ("SWOPTLock")
//   Static-All-X:Y  → {x=X, y=Y}
#pragma once

#include "core/policy_iface.hpp"
#include "core/lockmd.hpp"
#include "policy/grouping.hpp"

namespace ale {

struct StaticPolicyConfig {
  unsigned x = 5;  // max HTM attempts
  unsigned y = 3;  // max SWOpt attempts
  bool use_htm = true;
  bool use_swopt = true;
  // Transactional attempts request lazy subscription (ExecMode::kHtmLazy):
  // the lock word is first read at commit instead of at begin. The engine's
  // sanitize() demotes to eager kHtm when the backend lacks the
  // validated-read safety argument, so setting this is always safe.
  bool lazy = false;
  // §4: lock-acquisition aborts consume only this fraction of the X budget
  // ("accounted in a much lighter way").
  double locked_abort_weight = 0.25;
  // Grouping is an adaptive-policy mechanism in the paper; exposing it here
  // lets the ablation bench isolate its effect.
  bool grouping = false;
  double grouping_respect_probability = 1.0;
};

class StaticPolicy final : public Policy {
 public:
  explicit StaticPolicy(StaticPolicyConfig cfg = {}) noexcept : cfg_(cfg) {}

  const char* name() const override { return "static"; }
  const StaticPolicyConfig& config() const noexcept { return cfg_; }

  ExecMode choose_mode(const AttemptState& st, LockMd&, GranuleMd&) override {
    const double effective_htm =
        st.htm_attempts + st.htm_locked_aborts * cfg_.locked_abort_weight;
    if (cfg_.use_htm && st.htm_eligible &&
        effective_htm < static_cast<double>(cfg_.x)) {
      return cfg_.lazy ? ExecMode::kHtmLazy : ExecMode::kHtm;
    }
    if (cfg_.use_swopt && st.swopt_eligible && st.swopt_attempts < cfg_.y) {
      return ExecMode::kSwOpt;
    }
    return ExecMode::kLock;
  }

  void before_potentially_conflicting(LockMd& md) override {
    if (cfg_.grouping) {
      grouping_wait(md, cfg_.grouping_respect_probability);
    }
  }
  void on_swopt_retry_begin(LockMd& md) override {
    if (cfg_.grouping) md.swopt_retriers().arrive();
  }
  void on_swopt_retry_end(LockMd& md) override {
    if (cfg_.grouping) md.swopt_retriers().depart();
  }

 private:
  StaticPolicyConfig cfg_;
};

}  // namespace ale
