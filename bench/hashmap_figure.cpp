#include "hashmap_figure.hpp"

#include <cstring>

#include "bench_util.hpp"
#include "hashmap/hashmap.hpp"

namespace ale::bench {

namespace {

sim::SimPlatform platform_by_name(const char* name) {
  if (std::strcmp(name, "rock") == 0) return sim::rock_platform();
  if (std::strcmp(name, "haswell") == 0) return sim::haswell_platform();
  return sim::t2_platform();
}

// One REAL-block measurement: mixed workload against the actual AleHashMap
// under the named policy and emulated platform profile.
//
// Telemetry-overhead check (fig3 REAL block, 20% mutate, this container):
// with tracing disabled (the default) every instrumented engine site costs
// one relaxed load, and throughput is unchanged vs the pre-telemetry build —
// e.g. Instrumented 6.68/6.42/6.18 Mops/s before vs 6.78/6.70/6.23 after at
// 1/2/4 threads; Static-SL-3 5.57/4.98/4.73 before vs 5.69/5.33/5.30 after
// (differences are run-to-run noise, the instrumented build is not slower).
double real_hashmap_run(const std::string& policy_spec, unsigned threads,
                        double mutate, std::uint64_t key_range,
                        double seconds) {
  install_policy_spec(policy_spec);
  AleHashMap map(1024, "fig.tblLock");
  for (std::uint64_t k = 0; k < key_range; k += 2) map.insert(k, k);
  const double rate = timed_run(
      threads, seconds, [&](unsigned, Xoshiro256& rng) {
        const std::uint64_t k = rng.next_below(key_range);
        const double roll = rng.next_double();
        std::uint64_t v = 0;
        if (roll < mutate / 2) {
          map.insert(k, k);
        } else if (roll < mutate) {
          map.remove(k);
        } else {
          map.get(k, v);
        }
      });
  set_global_policy(nullptr);
  return rate;
}

}  // namespace

void run_hashmap_figure(const char* figure_id, const char* platform_name) {
  const auto platform = platform_by_name(platform_name);
  set_profile(platform_name);
  const auto rows = standard_policy_rows(platform.htm);
  constexpr std::uint64_t kKeyRange = 4096;

  std::printf("=== %s: HashMap microbenchmark on %s (%u hw threads, HTM %s) "
              "===\n",
              figure_id, platform.name.c_str(), platform.hw_threads,
              platform.htm ? "yes" : "no");
  print_run_seed();

  for (const double mutate : {0.02, 0.20, 0.60}) {
    std::printf("\n--- %.0f%% mutating operations, %llu keys ---\n",
                mutate * 100, static_cast<unsigned long long>(kKeyRange));
    std::printf(" SIM (platform model, full thread range):\n");
    print_sim_series(platform, sim::hashmap_workload(mutate, kKeyRange, 1024),
                     rows);
  }

  // REAL block: end-to-end run of the actual library at host scale.
  std::printf("\n--- REAL: ALE library, emulated-HTM profile '%s', host "
              "threads ---\n",
              platform_name);
  std::printf("  %-16s%12s%12s%12s\n", "policy (20%mut)", "1 thr", "2 thr",
              "4 thr");
  for (const auto& row : rows) {
    std::printf("  %-16s", row.label.c_str());
    for (const unsigned n : {1u, 2u, 4u}) {
      const double rate = real_hashmap_run(row.spec, n, 0.20, kKeyRange, 0.2);
      std::printf("%12.0f", rate);
    }
    std::printf("\n");
  }
  std::printf("  (REAL: operations per second on this host)\n");
}

}  // namespace ale::bench
