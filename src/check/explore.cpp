#include "check/explore.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/cycles.hpp"
#include "common/env.hpp"
#include "common/prng.hpp"

namespace ale::check {

namespace {

// RAII: the explorer runs under virtual time by default so time-learning
// code sees deterministic costs; restored on exit.
struct ScopedVirtualTime {
  explicit ScopedVirtualTime(bool on) : prev(virtual_time_enabled()) {
    if (on) set_virtual_time_enabled(true);
  }
  ~ScopedVirtualTime() { set_virtual_time_enabled(prev); }
  bool prev;
};

// The repro's ALE_SEED is the *process run seed*, not the exploration's
// base seed: engine-internal PRNG streams (backoff jitter, sampling) also
// derive from the run seed and equally shape every interleaving, so the
// replaying process must pin it. A harness that fixed an explicit base
// seed (opts.seed != 0) must also re-fix it on replay — the repro hint is
// expected to carry that (bench/check_explorer appends --seed).
std::string make_repro(const ExploreOptions& opts, std::uint64_t schedule) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "ALE_SEED=0x%" PRIx64 " ALE_CHECK_SCHEDULE=%" PRIu64 " %s",
                run_seed(), schedule,
                opts.repro_hint.empty() ? opts.name.c_str()
                                        : opts.repro_hint.c_str());
  return buf;
}

}  // namespace

RunStats ScheduleCtx::run_threads(std::vector<std::function<void()>> bodies) {
  last_ = run_schedule(opts_, std::move(bodies), dfs_);
  return last_;
}

ExploreResult explore(const ExploreOptions& opts_in, const ScenarioFn& fn) {
  ExploreOptions opts = opts_in;
  opts.schedules = env_uint64("ALE_CHECK_SCHEDULES", opts.schedules);
  const std::uint64_t replay =
      env_uint64("ALE_CHECK_SCHEDULE", ~std::uint64_t{0});
  const bool replaying = replay != ~std::uint64_t{0};

  // The base seed ties the whole exploration to the process run seed, so
  // ALE_SEED alone pins every schedule in the sweep.
  const std::uint64_t base_seed =
      opts.seed != 0 ? opts.seed : derive_seed(0xa1ec4ecULL);

  ExploreResult result;
  ScopedVirtualTime vt(opts.virtual_time);
  DfsState dfs;

  const bool exhaustive = opts.strategy == Strategy::kExhaustive;
  // Replay re-runs the whole prefix 0..k for every strategy, not just the
  // schedule at k: kExhaustive needs it to rebuild the DFS prefix, and the
  // randomized strategies need it because schedule k's outcome depends on
  // in-process state the earlier schedules left behind (lazily built
  // context/granule structures, allocator history feeding address-hashed
  // caches). Schedules 0..k-1 were clean in the original sweep — a sweep
  // stops at its first violation — so the deterministic re-run reaches k
  // with identical state and the prefix costs no more than the original
  // hunt did.
  std::uint64_t k = 0;
  const std::uint64_t end = replaying ? replay + 1 : opts.schedules;
  for (; k < end; ++k) {
    ScheduleCtx ctx;
    ctx.index_ = k;
    ctx.opts_.strategy = opts.strategy;
    // kExhaustive enumerates via the DFS prefix under one fixed seed;
    // randomized strategies re-derive a seed per schedule index so a
    // single index replays without iterating its predecessors.
    ctx.opts_.seed = opts.strategy == Strategy::kExhaustive
                         ? base_seed
                         : derive_seed(base_seed, k);
    ctx.opts_.pct_change_points = opts.pct_change_points;
    ctx.opts_.pct_expected_steps = opts.pct_expected_steps;
    ctx.opts_.preemption_bound = opts.preemption_bound;
    ctx.opts_.max_steps = opts.max_steps;
    ctx.dfs_ = opts.strategy == Strategy::kExhaustive ? &dfs : nullptr;

    std::optional<std::string> violation = fn(ctx);
    result.schedules_run++;
    result.total_steps += ctx.last_.steps;
    if (ctx.last_.budget_exhausted) result.budget_exhausted_runs++;
    if (!violation && ctx.last_.body_exception) {
      violation = "uncaught exception in controlled thread: " +
                  ctx.last_.exception_what;
    }

    if (violation) {
      Violation v;
      v.schedule = k;
      v.seed = ctx.opts_.seed;
      v.detail = *violation;
      v.repro = make_repro(opts, k);
      if (!opts.quiet) {
        std::fprintf(stderr,
                     "[ale.check] %s: violation at schedule %" PRIu64
                     " (strategy=%s): %s\n",
                     opts.name.c_str(), k, to_string(opts.strategy),
                     v.detail.c_str());
        std::fprintf(stderr, "[ale.check] repro: %s\n", v.repro.c_str());
      }
      result.violations.push_back(std::move(v));
      if (opts.stop_on_violation) break;
    }

    if (exhaustive) {
      if (!dfs.advance()) {
        result.space_exhausted = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace ale::check
