// ale::check scheduler: serialization, determinism, strategies, budgets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/sched_point.hpp"
#include "check/scheduler.hpp"
#include "test_util.hpp"

namespace ale::check {
namespace {

struct SchedulerTest : ::testing::Test {
  test::ReproOnFailure repro{"ale_tests_check"};
};

// Record the interleaving a schedule produces: each body appends its id at
// every step. Under serialization the shared vector needs no lock.
struct TraceRun {
  std::vector<unsigned> order;
  RunStats stats;
};

TraceRun trace_run(const SchedulerOptions& opts, unsigned threads,
                   unsigned steps_per_thread, DfsState* dfs = nullptr) {
  TraceRun out;
  std::vector<std::function<void()>> bodies;
  for (unsigned t = 0; t < threads; ++t) {
    bodies.push_back([&out, t, steps_per_thread] {
      for (unsigned i = 0; i < steps_per_thread; ++i) {
        preempt(Sp::kTxLoad);
        out.order.push_back(t);
      }
    });
  }
  out.stats = run_schedule(opts, std::move(bodies), dfs);
  return out;
}

TEST_F(SchedulerTest, SerializesUnsynchronizedAccess) {
  // 3 threads increment a plain (non-atomic) counter with a read/modify/
  // write split across a preemption point. Serialization makes it exact:
  // control only moves at scheduling points, never mid-increment.
  SchedulerOptions opts;
  opts.seed = 7;
  std::uint64_t counter = 0;
  std::vector<std::function<void()>> bodies;
  for (unsigned t = 0; t < 3; ++t) {
    bodies.push_back([&counter] {
      for (int i = 0; i < 50; ++i) {
        preempt(Sp::kTxLoad);
        const std::uint64_t v = counter;
        // No preempt between read and write: the increment is atomic
        // *under this scheduler* because control can't move here.
        counter = v + 1;
      }
    });
  }
  const RunStats st = run_schedule(opts, std::move(bodies));
  EXPECT_EQ(counter, 150u);
  EXPECT_GE(st.steps, 150u);
  EXPECT_FALSE(st.budget_exhausted);
  EXPECT_FALSE(scheduler_active());  // deactivated after the run
}

TEST_F(SchedulerTest, SameSeedSameSchedule) {
  for (const Strategy s : {Strategy::kRandom, Strategy::kPct}) {
    SchedulerOptions opts;
    opts.strategy = s;
    opts.seed = 0xfeedULL;
    const TraceRun a = trace_run(opts, 3, 20);
    const TraceRun b = trace_run(opts, 3, 20);
    EXPECT_EQ(a.order, b.order) << to_string(s);
    EXPECT_EQ(a.stats.steps, b.stats.steps) << to_string(s);
    EXPECT_EQ(a.stats.switches, b.stats.switches) << to_string(s);
  }
}

TEST_F(SchedulerTest, DifferentSeedsDiverge) {
  // Not guaranteed for any single pair, so try a few; uniform choice over 3
  // threads × 60 points makes a 5-way collision astronomically unlikely.
  SchedulerOptions opts;
  opts.seed = 1;
  const TraceRun base = trace_run(opts, 3, 20);
  bool diverged = false;
  for (std::uint64_t seed = 2; seed <= 6 && !diverged; ++seed) {
    opts.seed = seed;
    diverged = trace_run(opts, 3, 20).order != base.order;
  }
  EXPECT_TRUE(diverged);
}

TEST_F(SchedulerTest, YieldSpinBreaksSpinWaits) {
  // Thread 0 spins until thread 1 sets a flag. yield_spin() must hand
  // control over instead of looping forever on the one runnable thread.
  SchedulerOptions opts;
  opts.seed = 3;
  bool flag = false;
  bool observed = false;
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    while (!flag) yield_spin(Sp::kSpinWait);
    observed = true;
  });
  bodies.push_back([&] {
    preempt(Sp::kTxStore);
    flag = true;
  });
  const RunStats st = run_schedule(opts, std::move(bodies));
  EXPECT_TRUE(observed);
  EXPECT_FALSE(st.budget_exhausted);
}

TEST_F(SchedulerTest, BudgetExhaustionFreesAllThreads) {
  // A genuine livelock under serialization: a spin-wait on a flag nobody
  // sets until the waiter itself gets past it. With only yield hooks the
  // schedule cannot finish; the step budget must release every thread to
  // free-run (where the OS interleaves them and the flag store lands).
  SchedulerOptions opts;
  opts.seed = 5;
  opts.max_steps = 200;
  std::atomic<bool> flag{false};
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    // Controlled: spins forever, since its partner only runs *after* the
    // budget releases everyone.
    while (!flag.load(std::memory_order_acquire)) {
      yield_spin(Sp::kSpinWait);
    }
  });
  bodies.push_back([&] {
    // Burn the budget, then set the flag only once free-running.
    for (int i = 0; i < 1000; ++i) preempt(Sp::kTxLoad);
    flag.store(true, std::memory_order_release);
  });
  const RunStats st = run_schedule(opts, std::move(bodies));
  EXPECT_TRUE(st.budget_exhausted);  // and the run still terminated
}

TEST_F(SchedulerTest, BodyExceptionIsCapturedNotThrown) {
  SchedulerOptions opts;
  opts.seed = 11;
  std::vector<std::function<void()>> bodies;
  bodies.push_back([] { throw std::runtime_error("boom"); });
  bodies.push_back([] {
    for (int i = 0; i < 5; ++i) preempt(Sp::kTxLoad);
  });
  const RunStats st = run_schedule(opts, std::move(bodies));
  EXPECT_TRUE(st.body_exception);
  EXPECT_NE(st.exception_what.find("boom"), std::string::npos);
}

TEST_F(SchedulerTest, ExhaustiveEnumeratesBoundedSpaceDeterministically) {
  // 2 threads × 2 preemption points, bound 1: a small finite tree. The
  // enumeration must terminate, produce distinct interleavings, and replay
  // identically from a fresh DfsState.
  auto enumerate = [] {
    std::vector<std::vector<unsigned>> orders;
    DfsState dfs;
    SchedulerOptions opts;
    opts.strategy = Strategy::kExhaustive;
    opts.seed = 2;
    opts.preemption_bound = 1;
    for (int guard = 0; guard < 1000; ++guard) {
      orders.push_back(trace_run(opts, 2, 2, &dfs).order);
      if (!dfs.advance()) break;
    }
    EXPECT_TRUE(dfs.exhausted);
    return orders;
  };
  const auto a = enumerate();
  const auto b = enumerate();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 1u);
  EXPECT_LT(a.size(), 1000u);  // the bound really bounds the tree
  // At least two distinct interleavings were visited.
  bool distinct = false;
  for (std::size_t i = 1; i < a.size(); ++i) distinct |= a[i] != a[0];
  EXPECT_TRUE(distinct);
}

TEST_F(SchedulerTest, HooksAreNoOpsOutsideARun) {
  EXPECT_FALSE(scheduler_active());
  preempt(Sp::kTxLoad);        // must not crash or block
  yield_spin(Sp::kSpinWait);   // ditto
  EXPECT_EQ(std::string(to_string(Sp::kSpinWait)), "spin.wait");
  EXPECT_EQ(strategy_by_name("pct"), Strategy::kPct);
  EXPECT_EQ(strategy_by_name("bogus"), std::nullopt);
}

}  // namespace
}  // namespace ale::check
